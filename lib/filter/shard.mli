(** Profile-partition sharding: the second parallel axis.

    {!Pool.match_batch} parallelises over the {e event} axis, which is
    the right cut for big batches. For huge profile populations fed by
    small batches (or single events) the event axis has nothing to
    split, so [Shard.build] splits the {e profile} axis instead: the
    live set is partitioned into [shards] contiguous ascending-id
    ranges, each compiled into its own {!Flat.t} over its own
    decomposition. Any event can then be matched against all shards
    independently — on one domain here via {!match_list}, or fanned out
    across the pool with {!Pool.match_shards}.

    Because the ranges are disjoint and ascending, concatenating the
    per-shard match lists in shard order reproduces the exact ascending
    id list the unsharded matcher returns. Operation counters are
    summed across shards (per-shard trees are smaller, so the total
    comparison count generally differs from the unsharded matcher —
    the shards answer the same question by a different plan), with
    [events] charged once per event rather than once per shard. *)

type t

val build : ?shards:int -> Genas_profile.Profile_set.t -> t
(** Compile a sharded matcher over the current live set. [shards]
    defaults to 2 and is clamped to the number of live profiles (an
    empty set compiles one empty shard). Like {!Flat.compile}, the
    result is an immutable snapshot: later churn in the profile set is
    not reflected (compare {!revision}).

    @raise Invalid_argument if [shards < 1]. *)

val count : t -> int
(** Shards actually built (after clamping). *)

val flats : t -> Flat.t array
(** The per-shard compiled matchers, borrowed, in ascending profile-id
    range order. *)

val revision : t -> int
(** Profile-set revision captured at {!build} time. *)

type cursor
(** One {!Flat.cursor} per shard, for single-domain use. *)

val cursor : t -> cursor

val match_list :
  ?ops:Ops.t -> t -> cursor -> Genas_model.Event.t ->
  Genas_profile.Profile_set.id list
(** Match one event against every shard on the calling domain,
    returning the concatenated ascending id list.

    @raise Invalid_argument if the cursor came from a different shard
    set. *)
