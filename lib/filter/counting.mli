(** Counting matcher.

    The classic predicate-counting algorithm used by SIFT and
    Le Subscribe (§2's "clustering/simple hybrid" family): per
    attribute, locate the event's cell (one binary search over the
    global cells) and credit every profile whose predicate that cell
    satisfies; a profile matches when its credit equals the number of
    attributes it constrains. All-don't-care profiles match every
    event.

    Cost accounting: cell location costs ⌈log2(#cells)⌉ comparisons
    per attribute, each credit costs one.

    Credits live in a preallocated epoch-stamped [int array] (reset in
    O(1) per event), so matching allocates no per-event tables; the
    scratch makes a matcher single-threaded — share the underlying
    profile set, not the matcher, across domains. *)

type t

val build : Genas_profile.Profile_set.t -> t

val revision : t -> int

val match_event :
  ?ops:Ops.t -> t -> Genas_model.Event.t -> Genas_profile.Profile_set.id list
(** Matched profile ids, ascending. *)
