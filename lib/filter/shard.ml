module Profile_set = Genas_profile.Profile_set

type t = { flats : Flat.t array; revision : int }

let build ?(shards = 2) pset =
  if shards < 1 then invalid_arg "Shard.build: need at least one shard";
  (* Snapshot the live profiles in ascending-id order; the partition is
     by rank in that order, so shard s holds a contiguous id range and
     concatenating per-shard match results in shard order yields the
     exact ascending list a single matcher would produce. *)
  let entries =
    let acc = ref [] in
    Profile_set.iter pset (fun id p -> acc := (id, p) :: !acc);
    Array.of_list (List.rev !acc)
  in
  let n = Array.length entries in
  let k = min shards (max 1 n) in
  let schema = Profile_set.schema pset in
  let flats =
    Array.init k (fun s ->
        let lo = s * n / k and hi = (s + 1) * n / k in
        let sub = Profile_set.create schema in
        for i = lo to hi - 1 do
          let id, p = entries.(i) in
          Profile_set.add_with_id sub ~id p
        done;
        let decomp = Decomp.build sub in
        Flat.compile (Tree.build decomp (Tree.default_config decomp)))
  in
  { flats; revision = Profile_set.revision pset }

let count t = Array.length t.flats
let flats t = t.flats
let revision t = t.revision

type cursor = Flat.cursor array

let cursor t = Array.map Flat.cursor t.flats

let match_list ?ops t cur event =
  if Array.length cur <> Array.length t.flats then
    invalid_arg "Shard.match_list: cursor belongs to a different shard set";
  (* Each shard charges its own comparisons/visits/matches; the event
     itself is one event, not [count t] events. *)
  let events_before = match ops with Some o -> o.Ops.events | None -> 0 in
  let out =
    List.concat
      (List.init (Array.length t.flats) (fun s ->
           Flat.match_list ?ops t.flats.(s) cur.(s) event))
  in
  (match ops with Some o -> o.Ops.events <- events_before + 1 | None -> ());
  out
