module Event = Genas_model.Event
module Overlay = Genas_interval.Overlay
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set

type t = {
  decomp : Decomp.t;
  cell_profiles : int array array array;
      (** [attr].[cell] → profile ids credited by that cell *)
  needed : int array;  (** per profile id: #constrained attrs (0 = none) *)
  all_dont_care : int array;  (** profiles with no constraint at all *)
  max_id : int;
  (* Per-event scratch, preallocated once and reset in O(1) by epoch
     stamping: [credits.(id)] is only meaningful when [stamp.(id)]
     equals the current epoch, so no per-event table or clearing pass
     is needed. One matcher therefore serves one thread of control. *)
  credits : int array;
  stamp : int array;
  touched : int array;  (** ids credited by the current event *)
  mutable epoch : int;
}

let build pset =
  let decomp = Decomp.build pset in
  let n = Decomp.arity decomp in
  let cell_profiles =
    Array.init n (fun attr ->
        Array.map
          (fun (c : Overlay.cell) -> Array.of_list c.Overlay.ids)
          decomp.Decomp.overlays.(attr).Overlay.cells)
  in
  let max_id = ref (-1) in
  Profile_set.iter pset (fun id _ -> if id > !max_id then max_id := id);
  let slots = !max_id + 1 in
  let needed = Array.make slots 0 in
  let all_dont_care = ref [] in
  Profile_set.iter pset (fun id p ->
      match Profile.arity_used p with
      | 0 -> all_dont_care := id :: !all_dont_care
      | k -> needed.(id) <- k);
  {
    decomp;
    cell_profiles;
    needed;
    all_dont_care = Array.of_list (List.rev !all_dont_care);
    max_id = !max_id;
    credits = Array.make slots 0;
    stamp = Array.make slots 0;
    touched = Array.make slots 0;
    epoch = 0;
  }

let revision t = t.decomp.Decomp.revision

let ceil_log2 m =
  if m <= 1 then if m = 1 then 1 else 0
  else
    let rec go acc v = if v >= m then acc else go (acc + 1) (v * 2) in
    go 0 1

let match_event ?ops t event =
  let n = Decomp.arity t.decomp in
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  let ntouched = ref 0 in
  let comparisons = ref 0 in
  for attr = 0 to n - 1 do
    let ncells = Array.length t.cell_profiles.(attr) in
    comparisons := !comparisons + ceil_log2 ncells;
    match Decomp.cell_of_event t.decomp ~attr event with
    | None -> ()
    | Some cell ->
      Array.iter
        (fun id ->
          incr comparisons;
          if t.stamp.(id) = epoch then t.credits.(id) <- t.credits.(id) + 1
          else begin
            t.stamp.(id) <- epoch;
            t.credits.(id) <- 1;
            t.touched.(!ntouched) <- id;
            incr ntouched
          end)
        t.cell_profiles.(attr).(cell)
  done;
  let matched = ref (Array.to_list t.all_dont_care) in
  for k = 0 to !ntouched - 1 do
    let id = t.touched.(k) in
    if t.credits.(id) = t.needed.(id) then matched := id :: !matched
  done;
  let matched = List.sort Int.compare !matched in
  (match ops with
  | Some o ->
    o.Ops.comparisons <- o.Ops.comparisons + !comparisons;
    o.Ops.events <- o.Ops.events + 1;
    o.Ops.matches <- o.Ops.matches + List.length matched
  | None -> ());
  matched
