(** Notifications: the ENS output channel.

    An ENS "informs its users about new events that occurred on
    providers' sites" (§1); a notification carries the event, its
    origin — the primitive profile or the composite subscription that
    matched — and the subscriber it is delivered to. *)

type origin =
  | Primitive of Genas_profile.Profile_set.id
      (** matched a primitive profile, by registry id *)
  | Composite of int
      (** completed a composite occurrence, by composite-subscription
          id (ids are per broker, starting at 0) *)

type t = {
  event : Genas_model.Event.t;
  origin : origin;
  subscriber : string;
  broker : int option;  (** delivering broker in a routed network *)
}

type handler = t -> unit

val make :
  ?broker:int ->
  event:Genas_model.Event.t ->
  origin:origin ->
  subscriber:string ->
  unit ->
  t

val profile_id : t -> Genas_profile.Profile_set.id
  [@@ocaml.deprecated "match on Notification.origin instead"]
(** Compatibility accessor for the pre-[origin] record layout: the
    profile id for [Primitive] notifications and the old [-1] sentinel
    for [Composite] ones. *)

val pp_origin : Format.formatter -> origin -> unit

val pp : Genas_model.Schema.t -> Format.formatter -> t -> unit
