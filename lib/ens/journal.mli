(** Write-ahead journal of broker operations.

    The paper's speedup lives in statistics {e learned from observed
    traffic}; this journal makes them (and the subscriptions that
    consume them) survive a crash. Every state-changing broker
    operation — subscribe, unsubscribe, publish acceptance (with its
    dead-letter appends), dead-letter replay — is appended as one
    length-prefixed, checksummed record after its in-memory effects
    complete, so a crash loses at most the operation in flight, always
    atomically.

    Publish records carry {e absolute} counter snapshots (published,
    notifications, matcher operation counters, the full supervisor
    export) rather than deltas: replay restores exact values, and
    re-executing a lost operation on recovered state reproduces the
    reference run bit-for-bit.

    Every [snapshot_every] appends the {!Broker} takes a {!Snapshot}
    and the journal restarts, bounding both file size and recovery
    time. Recovery reads snapshot + journal tail; a torn or corrupt
    tail (detected by length prefix and seeded FNV-1a 64 checksum) is
    physically truncated and counted — never a crash.

    File layout under the journal directory: [journal.wal] (header
    [GWAL001\n] + seed, then framed records), [snapshot.bin], and a
    transient [snapshot.tmp]. *)

type config = {
  dir : string;
  snapshot_every : int;  (** journaled ops between snapshots *)
  fsync : bool;  (** fsync after every append (and header write) *)
  seed : int;  (** checksum seed, stored in the file headers *)
}

val config : ?snapshot_every:int -> ?fsync:bool -> ?seed:int -> string -> config
(** [config dir] with [snapshot_every] defaulting to 512, [fsync] to
    [true], [seed] to a fixed constant.

    @raise Invalid_argument if [snapshot_every < 1]. *)

type op =
  | Subscribe of {
      id : int;
      subscriber : string;
      profile : Genas_profile.Profile.t;
    }
  | Subscribe_composite of {
      id : int;
      subscriber : string;
      expr : Composite.expr;
    }
  | Unsubscribe_prim of { id : int }
  | Unsubscribe_comp of { id : int }
  | Publish of {
      events : Genas_model.Event.t array;
      batch : bool;
          (** batch publishes advance the adaptive cadence once for the
              whole array, exactly like the live path *)
      published : int;  (** absolute, after this operation *)
      notifications : int;  (** absolute *)
      ops : Genas_filter.Ops.t;  (** absolute matcher counters *)
      supervise : Supervise.Export.t;  (** absolute supervisor state *)
      new_deadletters : Deadletter.entry list;
          (** entries this operation appended (dead-letter append is
              journaled as part of the publish that caused it) *)
      dlq_total : int;
      dlq_dropped : int;
    }
  | Deadletter_replay of {
      published : int;
      notifications : int;
      supervise : Supervise.Export.t;
      dlq_entries : Deadletter.entry list;
          (** the full queue after the replay pass (replay removes
              entries, so the record replaces rather than appends) *)
      dlq_total : int;
      dlq_dropped : int;
    }

type t

val create : ?metrics:Genas_obs.Metrics.t -> Genas_model.Schema.t -> config -> t
(** Start a {e fresh} journal: creates [dir] if needed, deletes any
    existing snapshot, and truncates [journal.wal]. Use {!recover} (via
    [Broker.recover]) to resume an existing directory instead.

    [metrics] registers the [genas_journal_*] family (see
    docs/OBSERVABILITY.md). *)

val append : t -> ?faults:Fault.t -> op -> unit
(** Frame, write, and (per config) fsync one record. With a fault plan,
    draws {!Fault.journal_crash} first: [Crash_before_fsync] writes a
    torn prefix of the frame and raises {!Fault.Crashed} — the record
    is {e not} durable; [Crash_after_journal] completes the append and
    fsync, then raises — the record {e is} durable. *)

val observe_snapshot_install : t -> ns:float -> unit
(** Record one atomic snapshot install's latency into the
    [genas_journal_snapshot_install_duration_ns] histogram (no-op
    without metrics). The broker times {!Snapshot.write} and reports
    it here, since the journal owns the [genas_journal_*] family. *)

val snapshot_due : t -> bool
(** [true] once [snapshot_every] records accumulated since the last
    snapshot (or creation). *)

val wrote_snapshot : t -> unit
(** Acknowledge an installed snapshot: restart [journal.wal] (header
    only) and reset the cadence. Call only after {!Snapshot.write}
    returned — the ordering (rename, then truncate) plus per-record op
    indices make a crash between the two steps harmless. *)

val close : t -> unit

val configuration : t -> config

(** {1 Counters} *)

val ops_logged : t -> int
(** Operations journaled over the broker's lifetime (monotonic across
    snapshots and recoveries) — the index the next record will carry. *)

val base_op : t -> int
(** Lowest op index still retained in [journal.wal] (snapshots restart
    the log, discarding earlier records). [ops_logged] when the current
    log is empty. *)

val events_since :
  t -> since:int -> (int * Genas_model.Event.t array) list * bool
(** Catch-up replay cursor: every [Publish] batch journaled with op
    index [> since], oldest first, each tagged with its op index. The
    boolean is [false] when a snapshot has already discarded part of
    the requested range ([base_op > since + 1]) — the caller saw a gap
    and must resynchronise some other way. Flushes before reading, so
    the result includes every append acknowledged so far. *)

val appends : t -> int
(** Records appended by this handle. *)

val snapshots_written : t -> int

val truncations : t -> int
(** Corrupt-tail truncations performed (at most one per recovery). *)

val replayed_ops : t -> int
(** Tail operations handed to replay by the recovery that created this
    handle (0 for a fresh journal). *)

val size_bytes : t -> int

(** {1 Recovery} *)

type recovered = {
  snapshot : Snapshot.data option;
  tail : op list;
      (** journaled ops not covered by the snapshot, oldest first *)
  truncated : int;  (** 1 if a corrupt tail was truncated, else 0 *)
}

val recover :
  ?metrics:Genas_obs.Metrics.t ->
  Genas_model.Schema.t ->
  config ->
  (recovered * t, string) result
(** Read [dir]'s snapshot and journal, truncate any corrupt tail, and
    return the recovered state plus a journal handle open for appending
    (op indices continue where the log left off). Fails when no journal
    exists, on header/seed mismatch, or when the snapshot itself is
    corrupt. *)
