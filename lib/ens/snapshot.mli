(** Durable broker snapshots.

    A snapshot captures the full recoverable state of a {!Broker} at a
    journal position: the profile set (with exact ids), composite
    subscriptions, learned statistics ({!Genas_core.Stats.Export} —
    the estimator histograms of §5's event history), the adaptive
    component's warmup counters and planned-for distributions, the
    delivery supervisor (counters, circuit-breaker states, jitter
    stream position), and the bounded dead-letter queue.

    Snapshots are written atomically: encode → write [snapshot.tmp] →
    fsync → rename over [snapshot.bin] → fsync the directory. A crash
    anywhere before the rename leaves the previous snapshot (or none)
    intact; {!Journal} truncates the log only after the rename, and
    every record carries its operation index, so recovery is idempotent
    across a crash between the two steps. *)

type data = {
  last_op : int;  (** highest journal operation the snapshot covers *)
  fingerprint : string;  (** {!Codec.schema_fingerprint} of the schema *)
  profiles : (int * string * Genas_profile.Profile.t) list;
      (** (profile id, subscriber, profile) *)
  next_profile_id : int;
      (** id counter — past removed ids, which are never reused *)
  composites : (int * string * Composite.expr) list;
  next_comp : int;
  published : int;
  notifications : int;
  ops : Genas_filter.Ops.t;
  stats : Genas_core.Stats.Export.t;
  adaptive : Genas_core.Adaptive.Export.t option;
  supervise : Supervise.Export.t;
  dlq_entries : Deadletter.entry list;
  dlq_total : int;
  dlq_dropped : int;
}

val file : string -> string
(** [file dir] is the snapshot path, [dir/snapshot.bin]. *)

val write :
  ?faults:Fault.t ->
  ?tracer:Genas_obs.Trace.t ->
  dir:string ->
  seed:int ->
  op:int ->
  Genas_model.Schema.t ->
  data ->
  unit
(** Atomically install [data] as [dir]'s snapshot. [op] identifies the
    journal position for crash injection ({!Fault.snapshot_crash}).
    With [tracer], the install runs under a ["snapshot.install"] span
    (closed with an error status if the install crashes).

    @raise Fault.Crashed when the plan injects [Crash_mid_snapshot]
    (a partial temp file is left behind; the install did not happen).
    @raise Sys_error on real I/O failure. *)

val read :
  dir:string ->
  seed:int ->
  Genas_model.Schema.t ->
  (data option, string) result
(** [Ok None] when no snapshot exists (fresh journal, or crash before
    the first snapshot). [Error _] on corruption, a checksum-seed
    mismatch, or a schema fingerprint mismatch — snapshots are
    installed atomically, so unlike a journal tail a malformed one is
    never silently truncated. A leftover [snapshot.tmp] is ignored. *)

val remove : dir:string -> unit
(** Delete any snapshot (and temp file) in [dir] — used when a fresh
    journal is created over an old directory. *)
