module Schema = Genas_model.Schema
module Profile = Genas_profile.Profile
module Ops = Genas_filter.Ops
module Stats = Genas_core.Stats
module Adaptive = Genas_core.Adaptive

type data = {
  last_op : int;
  fingerprint : string;
  profiles : (int * string * Profile.t) list;
  next_profile_id : int;
  composites : (int * string * Composite.expr) list;
  next_comp : int;
  published : int;
  notifications : int;
  ops : Ops.t;
  stats : Stats.Export.t;
  adaptive : Adaptive.Export.t option;
  supervise : Supervise.Export.t;
  dlq_entries : Deadletter.entry list;
  dlq_total : int;
  dlq_dropped : int;
}

let magic = "GSNAP01\n"

let file dir = Filename.concat dir "snapshot.bin"

let tmp_file dir = Filename.concat dir "snapshot.tmp"

let encode schema d =
  let b = Buffer.create 4096 in
  Codec.w_int b d.last_op;
  Codec.w_string b d.fingerprint;
  Codec.w_list
    (fun b (id, sub, p) ->
      Codec.w_int b id;
      Codec.w_string b sub;
      Codec.w_profile schema b p)
    b d.profiles;
  Codec.w_int b d.next_profile_id;
  Codec.w_list
    (fun b (id, sub, e) ->
      Codec.w_int b id;
      Codec.w_string b sub;
      Codec.w_expr schema b e)
    b d.composites;
  Codec.w_int b d.next_comp;
  Codec.w_int b d.published;
  Codec.w_int b d.notifications;
  Codec.w_ops b d.ops;
  Codec.w_stats b d.stats;
  Codec.w_option Codec.w_adaptive b d.adaptive;
  Codec.w_supervise b d.supervise;
  Codec.w_list Codec.w_deadletter b d.dlq_entries;
  Codec.w_int b d.dlq_total;
  Codec.w_int b d.dlq_dropped;
  Buffer.contents b

let decode schema payload =
  let r = Codec.reader payload in
  let last_op = Codec.r_int r in
  let fingerprint = Codec.r_string r in
  let profiles =
    Codec.r_list
      (fun r ->
        let id = Codec.r_int r in
        let sub = Codec.r_string r in
        let p = Codec.r_profile schema r in
        (id, sub, p))
      r
  in
  let next_profile_id = Codec.r_int r in
  let composites =
    Codec.r_list
      (fun r ->
        let id = Codec.r_int r in
        let sub = Codec.r_string r in
        let e = Codec.r_expr schema r in
        (id, sub, e))
      r
  in
  let next_comp = Codec.r_int r in
  let published = Codec.r_int r in
  let notifications = Codec.r_int r in
  let ops = Codec.r_ops r in
  let stats = Codec.r_stats r in
  let adaptive = Codec.r_option Codec.r_adaptive r in
  let supervise = Codec.r_supervise r in
  let dlq_entries = Codec.r_list (Codec.r_deadletter schema) r in
  let dlq_total = Codec.r_int r in
  let dlq_dropped = Codec.r_int r in
  Codec.r_end r;
  {
    last_op;
    fingerprint;
    profiles;
    next_profile_id;
    composites;
    next_comp;
    published;
    notifications;
    ops;
    stats;
    adaptive;
    supervise;
    dlq_entries;
    dlq_total;
    dlq_dropped;
  }

let header seed =
  let b = Buffer.create 16 in
  Buffer.add_string b magic;
  Codec.w_int b seed;
  Buffer.contents b

let fsync_dir dir =
  (* Make the rename itself durable. Best-effort: some filesystems
     refuse fsync on a directory fd. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write_core ?faults ~dir ~seed ~op schema data =
  let bytes = header seed ^ Codec.frame ~seed (encode schema data) in
  let tmp = tmp_file dir in
  let crash =
    match faults with Some f -> Fault.snapshot_crash f ~op | None -> false
  in
  if crash then begin
    (* Simulated death mid-write: a prefix of the temp file reaches the
       disk, the rename never happens. The previous snapshot (if any)
       and the journal are untouched. *)
    let oc = open_out_bin tmp in
    output_string oc (String.sub bytes 0 (String.length bytes / 2));
    close_out oc;
    raise (Fault.Crashed Fault.Crash_mid_snapshot)
  end
  else begin
    let oc = open_out_bin tmp in
    output_string oc bytes;
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc;
    Sys.rename tmp (file dir);
    fsync_dir dir
  end

let write ?faults ?tracer ~dir ~seed ~op schema data =
  let go () = write_core ?faults ~dir ~seed ~op schema data in
  match tracer with
  | None -> go ()
  | Some tr -> Genas_obs.Trace.with_span tr ~name:"snapshot.install" go

let read ~dir ~seed schema =
  let path = file dir in
  if not (Sys.file_exists path) then Ok None
  else begin
    let contents =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let hlen = String.length (header seed) in
    if String.length contents < hlen then Error "snapshot: truncated header"
    else if not (String.equal (String.sub contents 0 8) magic) then
      Error "snapshot: bad magic"
    else begin
      let stored_seed =
        Int64.to_int (String.get_int64_le contents (String.length magic))
      in
      if stored_seed <> seed then
        Error
          (Printf.sprintf "snapshot: checksum seed mismatch (file %d, config %d)"
             stored_seed seed)
      else
        match Codec.parse_frames ~seed contents ~pos:hlen with
        | [ payload ], _, false -> (
          match decode schema payload with
          | exception Codec.Corrupt msg -> Error ("snapshot: " ^ msg)
          | data ->
            if
              not (String.equal data.fingerprint (Codec.schema_fingerprint schema))
            then Error "snapshot: written against a different schema"
            else Ok (Some data))
        | _, _, _ ->
          (* The snapshot is installed by an atomic rename after fsync;
             a malformed file means it was not written by us. *)
          Error "snapshot: corrupt frame"
    end
  end

let remove ~dir =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ file dir; tmp_file dir ]
