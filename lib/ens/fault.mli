(** Deterministic fault injection for the notification service.

    Large-scale content-based networks treat broker, link, and
    subscriber failure as the common case; this module makes those
    failures reproducible. A {e plan} is a seeded source of fault
    decisions — "does this delivery attempt raise?", "does this link
    forward, drop, duplicate, or delay?", "does this broker pause?" —
    threaded through {!Broker} and {!Router} as an optional [?faults]
    argument. All randomness flows through {!Genas_prng.Prng}
    substreams split per fault category, so an identical seed and spec
    replay the identical failure trace, and enabling handler faults
    never perturbs the link decision stream (and vice versa).

    A plan records every fault it injects in a bounded trace; tests
    compare traces across runs to pin determinism. *)

exception Injected of string
(** Raised in place of the real handler when a plan injects a handler
    failure; also what supervised delivery reports as the error. *)

type crash_point =
  | Crash_before_fsync
      (** process dies while a journal record is in flight: a torn
          frame reaches the disk, the operation is lost *)
  | Crash_after_journal
      (** process dies after the record is durable but before the
          caller observes the acknowledgement *)
  | Crash_mid_snapshot
      (** process dies while writing the snapshot temp file; the
          previous snapshot and the journal stay intact *)

exception Crashed of crash_point
(** Raised at an injected crash point. Simulates process death: the
    broker that raised it must be abandoned and rebuilt with
    [Broker.recover]. *)

val crash_point_name : crash_point -> string

type spec = {
  handler_failure : (string * float) list;
      (** per-subscriber probability that one delivery {e attempt}
          raises (retries re-draw, so a flaky handler can succeed on a
          later attempt); subscribers not listed never fail *)
  link_drop : float;  (** probability an event forward is lost *)
  link_duplicate : float;  (** … delivered twice *)
  link_delay : float;
      (** … deferred until the undelayed propagation has finished *)
  broker_pause : float;
      (** probability a broker defers processing an arriving event
          (each arrival pauses at most once) *)
  crash_before_fsync : float;
      (** probability a journal append dies mid-write (torn record) *)
  crash_after_journal : float;
      (** probability the process dies right after a durable append *)
  crash_mid_snapshot : float;
      (** probability a snapshot write dies before the atomic rename *)
}

val none : spec
(** All probabilities zero: a plan that never injects anything. *)

type fault =
  | Handler_raise of { subscriber : string }
  | Link_drop of { src : int; dst : int }
  | Link_duplicate of { src : int; dst : int }
  | Link_delay of { src : int; dst : int }
  | Broker_pause of { node : int }
  | Crash of { point : crash_point; op : int }

type t

val plan : seed:int -> spec -> t
(** @raise Invalid_argument on probabilities outside [[0,1]] or when
    the three link probabilities sum above 1. *)

val seed : t -> int

val spec : t -> spec

(** {1 Decision points} (consumed by Broker/Router; drawing only
    happens for categories with non-zero probability, so a plan with
    [none] injects nothing and consumes no randomness) *)

val handler_raises : t -> subscriber:string -> bool

val link_fate : t -> src:int -> dst:int -> [ `Forward | `Drop | `Duplicate | `Delay ]

val broker_pauses : t -> node:int -> bool

val journal_crash : t -> op:int -> crash_point option
(** Drawn by {!Journal.append} before each record, identified by the
    journal operation index. At most one crash ever fires per plan —
    the simulated process only dies once — and the two journal crash
    probabilities share a single draw ([crash_before_fsync] wins ties
    the way [link_fate] orders link faults). *)

val snapshot_crash : t -> op:int -> bool
(** Drawn by the snapshot writer; [true] means die mid-write (before
    the atomic rename). Also fires at most once per plan, sharing the
    crashed latch with {!journal_crash}. *)

val crashed : t -> bool
(** [true] once any crash point has fired. *)

(** {1 Inspection} *)

val injected : t -> int
(** Total faults injected so far. *)

val trace : t -> fault list
(** Injected faults, oldest first, bounded at 65536 entries (excess is
    counted in {!trace_dropped}). *)

val trace_dropped : t -> int

val pp_fault : Format.formatter -> fault -> unit
