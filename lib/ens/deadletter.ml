type entry = {
  notification : Notification.t;
  attempts : int;
  error : string;
  seq : int;
}

type t = {
  capacity : int;
  q : entry Queue.t;
  mutable total : int;
  mutable dropped : int;
}

let create ?(capacity = 1024) () =
  if capacity < 0 then invalid_arg "Deadletter.create: negative capacity";
  { capacity; q = Queue.create (); total = 0; dropped = 0 }

let capacity t = t.capacity

let length t = Queue.length t.q

let total t = t.total

let dropped t = t.dropped

let push t entry =
  t.total <- t.total + 1;
  if t.capacity = 0 then t.dropped <- t.dropped + 1
  else begin
    if Queue.length t.q >= t.capacity then begin
      ignore (Queue.pop t.q);
      t.dropped <- t.dropped + 1
    end;
    Queue.add entry t.q
  end

let take t = Queue.take_opt t.q

let entries t = List.of_seq (Queue.to_seq t.q)

let iter t f = Queue.iter f t.q

let clear t = Queue.clear t.q

let replay t ~deliver =
  (* Drain first: a failed redelivery that goes back through supervised
     delivery may push itself (or a fresh failure) right back onto this
     queue, and must not be picked up again in the same pass. *)
  let pending = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  List.fold_left
    (fun (redelivered, failed) e ->
      if deliver e then (redelivered + 1, failed) else (redelivered, failed + 1))
    (0, 0) pending

let restore t entries ~total ~dropped =
  if total < 0 || dropped < 0 then
    invalid_arg "Deadletter.restore: negative counter";
  Queue.clear t.q;
  List.iter (fun e -> Queue.add e t.q) entries;
  while t.capacity > 0 && Queue.length t.q > t.capacity do
    ignore (Queue.pop t.q)
  done;
  if t.capacity = 0 then Queue.clear t.q;
  t.total <- total;
  t.dropped <- dropped

let force_counters t ~total ~dropped =
  if total < 0 || dropped < 0 then
    invalid_arg "Deadletter.force_counters: negative counter";
  t.total <- total;
  t.dropped <- dropped
