type entry = {
  notification : Notification.t;
  attempts : int;
  error : string;
  seq : int;
}

type t = {
  capacity : int;
  q : entry Queue.t;
  mutable total : int;
  mutable dropped : int;
}

let create ?(capacity = 1024) () =
  if capacity < 0 then invalid_arg "Deadletter.create: negative capacity";
  { capacity; q = Queue.create (); total = 0; dropped = 0 }

let capacity t = t.capacity

let length t = Queue.length t.q

let total t = t.total

let dropped t = t.dropped

let push t entry =
  t.total <- t.total + 1;
  if t.capacity = 0 then t.dropped <- t.dropped + 1
  else begin
    if Queue.length t.q >= t.capacity then begin
      ignore (Queue.pop t.q);
      t.dropped <- t.dropped + 1
    end;
    Queue.add entry t.q
  end

let take t = Queue.take_opt t.q

let entries t = List.of_seq (Queue.to_seq t.q)

let iter t f = Queue.iter f t.q

let clear t = Queue.clear t.q
