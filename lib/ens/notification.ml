module Event = Genas_model.Event
module Schema = Genas_model.Schema

type origin =
  | Primitive of Genas_profile.Profile_set.id
  | Composite of int

type t = {
  event : Event.t;
  origin : origin;
  subscriber : string;
  broker : int option;
}

type handler = t -> unit

let make ?broker ~event ~origin ~subscriber () =
  { event; origin; subscriber; broker }

let profile_id t = match t.origin with Primitive id -> id | Composite _ -> -1

let pp_origin ppf = function
  | Primitive id -> Format.fprintf ppf "profile %d" id
  | Composite id -> Format.fprintf ppf "composite %d" id

let pp schema ppf t =
  Format.fprintf ppf "@[<h>notify %s (%a%t): %a@]" t.subscriber pp_origin
    t.origin
    (fun ppf ->
      match t.broker with
      | Some b -> Format.fprintf ppf ", broker %d" b
      | None -> ())
    (Event.pp schema) t.event
