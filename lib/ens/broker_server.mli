(** A networked broker: serve the {!Transport} wire protocol over a
    listening socket.

    The server wraps an existing {!Broker.t} (so it composes with
    [Broker.recover] for crash-restart) and runs one thread per
    accepted connection, with every broker operation serialized under
    one lock. Remote subscriptions install ordinary broker handlers
    that queue events per connection; after each publish the queues
    flush as [Deliver] frames tagged with the journal cursor of the
    publish record — the originating connection is skipped (its local
    broker already delivered; the {!Router} no-echo rule on the wire).

    Durability and catch-up: on a journaled broker each accepted event
    is one WAL record, acknowledged with its op index; a reconnecting
    client sends [Replay { since }] and receives every retained record
    after its cursor filtered through its own subscriptions, out of
    {!Journal.events_since}. A deterministic {!Fault} plan applies
    [link_fate ~src:0 ~dst:conn_id] to live deliveries (drop /
    duplicate / delay); control frames and replay are never faulted.
    An injected journal crash ({!Fault.Crashed}) stops the server —
    simulated process death — and clients recover via reconnect +
    replay against a [Broker.recover]ed instance.

    Creating a server on an aggregated broker switches its engine to
    background epoch swaps ({!Genas_core.Engine.set_async_swaps}) —
    the long-lived publish loop must not stall on recompiles. *)

type t

val create :
  ?faults:Fault.t ->
  ?seed:int ->
  ?max_frame:int ->
  broker:Broker.t ->
  Transport.addr ->
  t
(** [seed] is the frame-checksum seed (must match the clients');
    [max_frame] bounds accepted frame payloads (hostile length
    prefixes fail before allocation). The server borrows [broker] —
    the caller keeps ownership and may publish/subscribe locally
    through it concurrently via {!publish}. *)

val serve : ?connections:int -> t -> unit
(** Run the accept loop on the calling thread. [connections = n]
    accepts exactly [n] connections and returns once all have
    disconnected (the CLI [serve] entry point for scripted runs);
    [0] (default) loops until {!stop} from another thread. *)

val start : t -> unit
(** Spawn the accept loop on a background thread and return. *)

val stop : t -> unit
(** Close the listener and every connection, join all threads, and
    wait out any in-flight background engine swap. *)

val publish : t -> Genas_model.Event.t array -> int
(** Publish locally on the server node (one journal record per event)
    and flush deliveries to every connection. Returns the cursor of
    the first record. *)

val broker : t -> Broker.t

val connections : t -> int
(** Currently connected peers. *)

val cursor : t -> int
(** The op index the next accepted publish record will carry. *)

val crashed : t -> bool
(** An injected journal crash stopped the server. *)
