(** A networked broker: serve the {!Transport} wire protocol over a
    listening socket.

    The server wraps an existing {!Broker.t} (so it composes with
    [Broker.recover] for crash-restart) and runs one thread per
    accepted connection, with every broker operation serialized under
    one lock. Remote subscriptions install ordinary broker handlers
    that queue events per connection; after each publish the queues
    flush as [Deliver] frames tagged with the journal cursor of the
    publish record — skipping the originating connection and any
    connection whose peer name equals the event's origin (its local
    broker already delivered; the {!Router} no-echo rule on the wire,
    made reconnect- and relay-proof by the origin tag).

    Robustness (docs/ROBUSTNESS.md): every connection owns a bounded
    outbound queue drained by a dedicated writer thread — a stalled
    consumer can neither block the broker lock nor grow memory without
    limit. At [max_queue] queued frames the peer is declared a slow
    consumer and disconnected; journal-backed replay is its catch-up
    path. A liveness monitor pings idle peers and reaps connections
    silent past the heartbeat deadline, so half-dead TCP endpoints
    (no FIN) are detected and collected.

    Durability and catch-up: on a journaled broker each accepted event
    is one WAL record, acknowledged with its op index; a reconnecting
    client sends [Replay { since }] and receives every retained record
    after its cursor filtered through its own subscriptions, out of
    {!Journal.events_since}. A deterministic {!Fault} plan applies
    [link_fate ~src:0 ~dst:conn_id] to live deliveries (drop /
    duplicate / delay); control frames and replay are never faulted.
    An injected journal crash ({!Fault.Crashed}) stops the server —
    simulated process death — and clients recover via reconnect +
    replay against a [Broker.recover]ed instance.

    Creating a server on an aggregated broker switches its engine to
    background epoch swaps ({!Genas_core.Engine.set_async_swaps}) —
    the long-lived publish loop must not stall on recompiles. *)

type t

val create :
  ?faults:Fault.t ->
  ?seed:int ->
  ?max_frame:int ->
  ?name:string ->
  ?role:string ->
  ?tracer:Genas_obs.Trace.t ->
  ?max_queue:int ->
  ?sndbuf:int ->
  ?heartbeat:Transport.heartbeat option ->
  ?tick_s:float ->
  ?metrics:Genas_obs.Metrics.t ->
  ?on_accept:
    (conn_id:int ->
    origin:string ->
    ctx:Transport.ctx ->
    Genas_model.Event.t array ->
    unit) ->
  ?on_subscribe:
    (conn_id:int -> token:int -> subscriber:string -> body:string -> unit) ->
  ?on_unsubscribe:(conn_id:int -> token:int -> body:string -> unit) ->
  broker:Broker.t ->
  Transport.addr ->
  t
(** [seed] is the frame-checksum seed (must match the clients');
    [max_frame] bounds accepted frame payloads (hostile length
    prefixes fail before allocation). [name] is this node's mesh name
    (default ["server"]) — events it publishes locally carry it as
    origin, and it must be unique within a mesh for no-echo to be
    sound. [role] only labels metrics and [Status] rows (default
    ["server"]; a relay's embedded server passes ["relay"]).
    [max_queue] (default 1024) bounds each connection's
    outbound queue; exceeding it triggers the slow-consumer
    disconnect. [sndbuf] shrinks accepted sockets' kernel send
    buffers (tests use it to trip backpressure deterministically).
    [heartbeat] (default {!Transport.default_heartbeat}; [None]
    disables liveness entirely) and [tick_s] (default 0.05) drive the
    monitor thread. [metrics] registers the [genas_net_*] family.

    With [tracer], every received publish runs under a hop span
    ([net.rx_publish]) that adopts the frame's wire trace context, and
    outgoing [Deliver] frames carry this hop's context — so a publish
    at a leaf of a relay chain and its delivery at the root share one
    trace id, stitchable with {!Genas_obs.Trace.merge_dumps}.

    Relay hooks, all invoked {e outside} the broker lock:
    [on_accept] after a remote publish is applied (with its origin
    resolved — an empty wire origin means the publishing peer
    itself — and [ctx] the context to propagate on the upstream
    forward: the received hop's own span when tracing, the wire
    context unchanged otherwise); [on_subscribe] after a {e new}
    remote subscription is installed but {e before} its [Ack] is sent,
    so once a subscriber sees the Ack the whole upstream path has the
    profile; [on_unsubscribe] after an explicit remote unsubscribe
    (not on connection drop — see {!Relay} for why forwards stay
    sticky).

    The server borrows [broker] — the caller keeps ownership and may
    publish/subscribe locally through it concurrently via
    {!publish}. *)

val serve : ?connections:int -> t -> unit
(** Run the accept loop on the calling thread. [connections = n]
    accepts exactly [n] connections and returns once all have
    disconnected (the CLI [serve] entry point for scripted runs);
    [0] (default) loops until {!stop} from another thread. *)

val start : t -> unit
(** Spawn the accept loop on a background thread and return. *)

val stop : t -> unit
(** Close the listener and every connection, join all threads, and
    wait out any in-flight background engine swap. *)

val publish :
  ?origin:string ->
  ?via:string ->
  ?ctx:Transport.ctx ->
  t ->
  Genas_model.Event.t array ->
  int
(** Publish locally on the server node (one journal record per event)
    and flush deliveries to every connection. [origin] (default the
    server's own [name]) tags the deliveries for cross-hop no-echo —
    a relay re-publishing an upstream delivery into its local broker
    passes the original publisher's name through. With a [tracer],
    [ctx] (a wire trace context received with the event) is adopted
    for the publish's hop span and [via] names the peer that sent it.
    Returns the cursor of the first record. *)

val broker : t -> Broker.t

val name : t -> string

val connections : t -> int
(** Currently connected peers. *)

val cursor : t -> int
(** The op index the next accepted publish record will carry. *)

val crashed : t -> bool
(** An injected journal crash stopped the server. *)

val slow_disconnects : t -> int
(** Connections dropped by the bounded-queue slow-consumer policy. *)

val reaped : t -> int
(** Connections reaped by the liveness monitor after missing the
    heartbeat deadline. *)

(** {1 Mesh introspection} *)

val status : t -> Transport.node_status
(** This node's own status row: name, role, journal cursor ([-1]
    unjournaled), live connections with per-peer queue depth and
    receive age, uptime, and — when a metrics registry is attached —
    every counter's current value. *)

val set_on_status : t -> (unit -> Transport.node_status list) -> unit
(** Install the [Status_req] answerer. A relay uses this to prepend
    its own {!status} to the rows collected from the rest of its
    upstream chain; without it a request answers with [[status t]]. *)

val statuses : t -> Transport.node_status list
(** What a [Status_req] on this node would answer. *)
