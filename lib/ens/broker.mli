(** A single-node event notification service.

    The broker owns a schema, a profile registry, and a
    distribution-based filter engine ({!Genas_core.Engine}, optionally
    wrapped in the adaptive component); subscribers register primitive
    profiles — parsed from the profile language or pre-built — or
    composite expressions, and receive callbacks. Publishers may
    consult the broker's quench table to suppress unwanted events at
    the source. *)

type t

type sub_id

val create :
  ?spec:Genas_core.Reorder.spec ->
  ?adaptive:Genas_core.Adaptive.policy ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?deadletter_capacity:int ->
  Genas_model.Schema.t ->
  t
(** [adaptive] enables periodic distribution-driven re-optimization of
    the filter tree.

    [metrics] instruments the broker (publish/notification counters,
    per-subscriber delivery counters, quench-cache churn, delivery
    supervision) and is forwarded to the underlying engine and adaptive
    component; see docs/OBSERVABILITY.md for the metric names. Omitted,
    the broker performs no observability work.

    Delivery is always supervised (see {!Supervise} and
    docs/ROBUSTNESS.md): a handler that raises never prevents delivery
    to other subscribers, and the failed notification is dead-lettered.
    [retry] sets the retry/backoff/circuit-breaker policy (default:
    one attempt, no breaker); [deadletter_capacity] bounds the
    dead-letter queue (default 1024); [faults] attaches a deterministic
    fault-injection plan — omitted, no faults are ever injected and
    delivery behavior is identical to an unsupervised broker as long as
    no handler raises. *)

val schema : t -> Genas_model.Schema.t

val subscribe :
  t ->
  subscriber:string ->
  profile:Genas_profile.Profile.t ->
  Notification.handler ->
  sub_id

val subscribe_text :
  t ->
  subscriber:string ->
  string ->
  Notification.handler ->
  (sub_id, string) result
(** Parse the profile-language source and subscribe. *)

val subscribe_composite :
  t ->
  subscriber:string ->
  Composite.expr ->
  Notification.handler ->
  (sub_id, string) result
(** The handler fires once per completed composite occurrence, carrying
    the occurrence's last constituent event. Composite detection is
    stateful over the stream, so events must be published in
    non-decreasing time order once a composite subscription exists
    ({!publish} then raises [Invalid_argument] on a time
    regression). *)

val unsubscribe : t -> sub_id -> bool
(** [true] if the subscription was present. Idempotent: unsubscribing
    the same id again (primitive or composite) is a no-op returning
    [false], and the quench cache is invalidated exactly once per
    actual removal — a repeat unsubscribe never invalidates a fresh
    cache. *)

val publish : t -> Genas_model.Event.t -> int
(** Filter one event and deliver notifications; returns the number of
    notifications accepted by their handlers. Deliveries that fail
    terminally (handler raised on every attempt, or the subscriber's
    circuit is open) are dead-lettered and not counted — [published],
    [notifications], and the broker metrics stay mutually consistent
    whatever the handlers do. *)

val publish_batch :
  ?pool:Genas_filter.Pool.t -> t -> Genas_model.Event.t array -> int
(** Filter a whole batch, then deliver notifications in batch order;
    returns the total notifications sent. With [pool] (on a host with
    more than one domain) matching fans out across domains; delivery
    and composite detection always run on the calling domain, in
    order, so handler-visible behavior is identical to publishing the
    events one by one. Instrumented brokers record the batch size
    (histogram) and the worker count used (gauge). *)

val publish_quenched : t -> Genas_model.Event.t -> int option
(** Consult the quench table first: [None] if the event provably
    matches no subscription (it is then not filtered at all and does
    not enter the statistics history); [Some n] as [publish]
    otherwise. *)

val quench : t -> Quench.t
(** Current quench table (rebuilt on subscription changes). *)

val ops : t -> Genas_filter.Ops.t
(** Cumulative matcher operation counters. *)

val supervisor : t -> Supervise.t
(** The delivery supervisor: retry/failure counters, circuit states,
    and the bounded trace of eventful deliveries. *)

val deadletter : t -> Deadletter.t
(** Terminally failed notifications, oldest first, bounded. *)

val faults : t -> Fault.t option
(** The fault plan the broker was created with, if any. *)

val published : t -> int

val notifications : t -> int
(** Notifications accepted by handlers (terminal failures excluded —
    those are visible in {!deadletter} and the supervisor counters). *)

val subscription_count : t -> int

val engine : t -> Genas_core.Engine.t
(** The underlying filter engine (for inspection: tree shape, analytic
    reports, statistics). *)

val rebuilds : t -> int
(** Adaptive re-optimizations performed (0 without [adaptive]). *)
