(** A single-node event notification service.

    The broker owns a schema, a profile registry, and a
    distribution-based filter engine ({!Genas_core.Engine}, optionally
    wrapped in the adaptive component); subscribers register primitive
    profiles — parsed from the profile language or pre-built — or
    composite expressions, and receive callbacks. Publishers may
    consult the broker's quench table to suppress unwanted events at
    the source. *)

type t

type sub_id

val create :
  ?spec:Genas_core.Reorder.spec ->
  ?adaptive:Genas_core.Adaptive.policy ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?deadletter_capacity:int ->
  ?journal:Journal.config ->
  ?tracer:Genas_obs.Trace.t ->
  ?aggregate:bool ->
  ?delta_cap:int ->
  Genas_model.Schema.t ->
  t
(** [adaptive] enables periodic distribution-driven re-optimization of
    the filter tree.

    [aggregate] turns on subscription aggregation in the underlying
    engine ({!Genas_core.Engine.create}): subscribes and unsubscribes
    maintain a covering lattice and the matcher compiles only the
    covering-minimal profile set, so registry churn on a large
    population never blocks the publish path with a full replan.
    [delta_cap] bounds the structural churn accumulated between epoch
    swaps. See docs/SCALING.md.

    [tracer] attaches end-to-end causal tracing: every {!publish} /
    {!publish_batch} (if sampled) yields one span tree —
    ["broker.publish"] → ["engine.match"] → per-delivery ["deliver"] /
    ["deliver.attempt"] spans → ["journal.append"] and
    ["snapshot.install"] — with the flat-matcher traversal path
    attached, landing in the tracer's flight-recorder ring. The
    broker's engine is switched to hotness profiling
    ({!Genas_core.Engine.set_profiling}) so paths can be recorded. An
    injected crash or terminal delivery failure dumps the flight
    recorder ({!Genas_obs.Trace.record_crash}) before propagating. See
    docs/OBSERVABILITY.md, "Tracing".

    [journal] makes the broker durable: every state-changing operation
    is appended to a write-ahead journal in [journal.dir] (a {e fresh}
    journal — any previous contents of the directory are discarded; use
    {!recover} to resume them), and a {!Snapshot} is taken every
    [journal.snapshot_every] operations. See docs/ROBUSTNESS.md,
    "Durability & recovery".

    [metrics] instruments the broker (publish/notification counters,
    per-subscriber delivery counters, quench-cache churn, delivery
    supervision) and is forwarded to the underlying engine and adaptive
    component; see docs/OBSERVABILITY.md for the metric names. Omitted,
    the broker performs no observability work.

    Delivery is always supervised (see {!Supervise} and
    docs/ROBUSTNESS.md): a handler that raises never prevents delivery
    to other subscribers, and the failed notification is dead-lettered.
    [retry] sets the retry/backoff/circuit-breaker policy (default:
    one attempt, no breaker); [deadletter_capacity] bounds the
    dead-letter queue (default 1024); [faults] attaches a deterministic
    fault-injection plan — omitted, no faults are ever injected and
    delivery behavior is identical to an unsupervised broker as long as
    no handler raises. *)

val schema : t -> Genas_model.Schema.t

val subscribe :
  t ->
  subscriber:string ->
  profile:Genas_profile.Profile.t ->
  Notification.handler ->
  sub_id

val subscribe_text :
  t ->
  subscriber:string ->
  string ->
  Notification.handler ->
  (sub_id, string) result
(** Parse the profile-language source and subscribe. *)

val subscribe_composite :
  t ->
  subscriber:string ->
  Composite.expr ->
  Notification.handler ->
  (sub_id, string) result
(** The handler fires once per completed composite occurrence, carrying
    the occurrence's last constituent event. Composite detection is
    stateful over the stream, so events must be published in
    non-decreasing time order once a composite subscription exists
    ({!publish} then raises [Invalid_argument] on a time
    regression). *)

val unsubscribe : t -> sub_id -> bool
(** [true] if the subscription was present. Idempotent: unsubscribing
    the same id again (primitive or composite) is a no-op returning
    [false], and the quench cache is invalidated exactly once per
    actual removal — a repeat unsubscribe never invalidates a fresh
    cache. *)

val publish : t -> Genas_model.Event.t -> int
(** Filter one event and deliver notifications; returns the number of
    notifications accepted by their handlers. Deliveries that fail
    terminally (handler raised on every attempt, or the subscriber's
    circuit is open) are dead-lettered and not counted — [published],
    [notifications], and the broker metrics stay mutually consistent
    whatever the handlers do. *)

val publish_batch :
  ?pool:Genas_filter.Pool.t -> t -> Genas_model.Event.t array -> int
(** Filter a whole batch, then deliver notifications in batch order;
    returns the total notifications sent. With [pool] (on a host with
    more than one domain) matching fans out across domains; delivery
    and composite detection always run on the calling domain, in
    order, so handler-visible behavior is identical to publishing the
    events one by one. Instrumented brokers record the batch size
    (histogram) and the worker count used (gauge). *)

val publish_quenched : t -> Genas_model.Event.t -> int option
(** Consult the quench table first: [None] if the event provably
    matches no subscription (it is then not filtered at all and does
    not enter the statistics history); [Some n] as [publish]
    otherwise. *)

val quench : t -> Quench.t
(** Current quench table (rebuilt on subscription changes). *)

val ops : t -> Genas_filter.Ops.t
(** Cumulative matcher operation counters. *)

val supervisor : t -> Supervise.t
(** The delivery supervisor: retry/failure counters, circuit states,
    and the bounded trace of eventful deliveries. *)

val deadletter : t -> Deadletter.t
(** Terminally failed notifications, oldest first, bounded. *)

val faults : t -> Fault.t option
(** The fault plan the broker was created with, if any. *)

val published : t -> int

val notifications : t -> int
(** Notifications accepted by handlers (terminal failures excluded —
    those are visible in {!deadletter} and the supervisor counters). *)

val subscription_count : t -> int

val subscriptions : t -> (sub_id * string) list
(** Live subscriptions with their subscriber names, primitives (by
    profile id) before composites. Lets a caller that did not create a
    subscription — an operator console, or code resuming after
    {!recover} — address it for {!unsubscribe}. *)

val engine : t -> Genas_core.Engine.t
(** The underlying filter engine (for inspection: tree shape, analytic
    reports, statistics). *)

val rebuilds : t -> int
(** Adaptive re-optimizations performed (0 without [adaptive]). *)

(** {1 Tracing} *)

val tracer : t -> Genas_obs.Trace.t option
(** The tracer the broker was created with, if any. *)

val dump_flight_recorder : t -> string option
(** On-demand text dump of the tracer's flight recorder (held traces,
    spans, statuses, matcher paths); [None] on an untraced broker. *)

(** {1 Durability} *)

val wal : t -> Journal.t option
(** The broker's write-ahead journal, when created with [?journal] or
    by {!recover}. *)

val snapshot_now : t -> unit
(** Take a snapshot immediately (and restart the journal), regardless
    of the cadence. No-op on an unjournaled broker.

    @raise Fault.Crashed under an injected [Crash_mid_snapshot]. *)

val replay_deadletters : t -> int * int
(** Drain the dead-letter queue and push every entry back through the
    supervised delivery path of its original subscription; returns
    [(redelivered, failed)]. A redelivered notification increments
    {!notifications} (and the delivery counters) exactly once; a
    failing one is dead-lettered again by the supervisor — or, when its
    subscription no longer exists, re-queued as is — without being
    picked up twice in the same pass. Journaled brokers record the
    outcome as a single journal operation. *)

val close : t -> unit
(** Close the journal file handle, if any. The broker remains usable
    for in-memory operation; further journaled operations will fail. *)

val recover :
  ?spec:Genas_core.Reorder.spec ->
  ?adaptive:Genas_core.Adaptive.policy ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?deadletter_capacity:int ->
  ?tracer:Genas_obs.Trace.t ->
  ?aggregate:bool ->
  ?delta_cap:int ->
  ?handlers:(subscriber:string -> Notification.handler) ->
  journal:Journal.config ->
  Genas_model.Schema.t ->
  (t, string) result
(** Rebuild a broker from [journal.dir]: read the snapshot (if any),
    truncate a torn or corrupt journal tail, and replay the remaining
    operations. The recovered broker continues journaling in place.

    Handlers are code and cannot be journaled; [handlers] re-binds each
    subscriber name to a callback (default: a silent sink). For the
    recovered broker to be {e bit-identical} to an uncrashed one —
    matching decisions, learned distributions, tree shape after the
    next rebuild, counters, dead-letter queue — pass the same [spec],
    [adaptive], and [retry] the original was created with, and handlers
    with the same accept/raise behavior.

    Known limits (documented in docs/ROBUSTNESS.md): composite detector
    state {e spanning} a snapshot boundary is not captured (occurrences
    straddling the snapshot are regrown only from post-snapshot
    events), and the statistics' {e assumed} (provider-declared)
    distributions are not persisted. *)
