module Prng = Genas_prng.Prng

exception Injected of string

type crash_point = Crash_before_fsync | Crash_after_journal | Crash_mid_snapshot

exception Crashed of crash_point

let crash_point_name = function
  | Crash_before_fsync -> "crash-before-fsync"
  | Crash_after_journal -> "crash-after-journal"
  | Crash_mid_snapshot -> "crash-mid-snapshot"

type spec = {
  handler_failure : (string * float) list;
  link_drop : float;
  link_duplicate : float;
  link_delay : float;
  broker_pause : float;
  crash_before_fsync : float;
  crash_after_journal : float;
  crash_mid_snapshot : float;
}

let none =
  {
    handler_failure = [];
    link_drop = 0.0;
    link_duplicate = 0.0;
    link_delay = 0.0;
    broker_pause = 0.0;
    crash_before_fsync = 0.0;
    crash_after_journal = 0.0;
    crash_mid_snapshot = 0.0;
  }

type fault =
  | Handler_raise of { subscriber : string }
  | Link_drop of { src : int; dst : int }
  | Link_duplicate of { src : int; dst : int }
  | Link_delay of { src : int; dst : int }
  | Broker_pause of { node : int }
  | Crash of { point : crash_point; op : int }

let trace_cap = 65536

type t = {
  seed : int;
  spec : spec;
  (* One substream per fault category: injecting (or removing) handler
     faults never perturbs the link draws, and vice versa — the same
     seed replays the same per-category decision sequence. *)
  handler_rng : Prng.t;
  link_rng : Prng.t;
  broker_rng : Prng.t;
  crash_rng : Prng.t;
  mutable crashed : bool;
      (** crash points fire at most once per plan: the process that
          would draw a second crash died at the first one *)
  mutable injected : int;
  mutable trace : fault list;  (** newest first, bounded *)
  mutable trace_len : int;
  mutable trace_dropped : int;
}

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.plan: %s probability out of [0,1]" what)

let plan ~seed spec =
  check_prob "link_drop" spec.link_drop;
  check_prob "link_duplicate" spec.link_duplicate;
  check_prob "link_delay" spec.link_delay;
  check_prob "broker_pause" spec.broker_pause;
  check_prob "crash_before_fsync" spec.crash_before_fsync;
  check_prob "crash_after_journal" spec.crash_after_journal;
  check_prob "crash_mid_snapshot" spec.crash_mid_snapshot;
  List.iter (fun (s, p) -> check_prob ("handler_failure " ^ s) p)
    spec.handler_failure;
  if spec.link_drop +. spec.link_duplicate +. spec.link_delay > 1.0 then
    invalid_arg "Fault.plan: link fault probabilities sum above 1";
  if spec.crash_before_fsync +. spec.crash_after_journal > 1.0 then
    invalid_arg "Fault.plan: journal crash probabilities sum above 1";
  let base = Prng.create ~seed in
  let handler_rng = Prng.split base in
  let link_rng = Prng.split base in
  let broker_rng = Prng.split base in
  (* Split last so pre-existing plans keep their exact per-category
     decision streams (the faults.t cram output is a contract). *)
  let crash_rng = Prng.split base in
  {
    seed;
    spec;
    handler_rng;
    link_rng;
    broker_rng;
    crash_rng;
    crashed = false;
    injected = 0;
    trace = [];
    trace_len = 0;
    trace_dropped = 0;
  }

let seed t = t.seed

let spec t = t.spec

let record t fault =
  t.injected <- t.injected + 1;
  if t.trace_len >= trace_cap then t.trace_dropped <- t.trace_dropped + 1
  else begin
    t.trace <- fault :: t.trace;
    t.trace_len <- t.trace_len + 1
  end

let handler_raises t ~subscriber =
  match List.assoc_opt subscriber t.spec.handler_failure with
  | None | Some 0.0 -> false
  | Some p ->
    let hit = Prng.bernoulli t.handler_rng ~p in
    if hit then record t (Handler_raise { subscriber });
    hit

let link_fate t ~src ~dst =
  let { link_drop = d; link_duplicate = u; link_delay = y; _ } = t.spec in
  if d = 0.0 && u = 0.0 && y = 0.0 then `Forward
  else begin
    let x = Prng.float t.link_rng ~bound:1.0 in
    if x < d then begin
      record t (Link_drop { src; dst });
      `Drop
    end
    else if x < d +. u then begin
      record t (Link_duplicate { src; dst });
      `Duplicate
    end
    else if x < d +. u +. y then begin
      record t (Link_delay { src; dst });
      `Delay
    end
    else `Forward
  end

let broker_pauses t ~node =
  if t.spec.broker_pause = 0.0 then false
  else begin
    let hit = Prng.bernoulli t.broker_rng ~p:t.spec.broker_pause in
    if hit then record t (Broker_pause { node });
    hit
  end

let journal_crash t ~op =
  let before = t.spec.crash_before_fsync
  and after = t.spec.crash_after_journal in
  if t.crashed || (before = 0.0 && after = 0.0) then None
  else begin
    let x = Prng.float t.crash_rng ~bound:1.0 in
    let point =
      if x < before then Some Crash_before_fsync
      else if x < before +. after then Some Crash_after_journal
      else None
    in
    (match point with
    | Some p ->
      t.crashed <- true;
      record t (Crash { point = p; op })
    | None -> ());
    point
  end

let snapshot_crash t ~op =
  if t.crashed || t.spec.crash_mid_snapshot = 0.0 then false
  else begin
    let hit = Prng.bernoulli t.crash_rng ~p:t.spec.crash_mid_snapshot in
    if hit then begin
      t.crashed <- true;
      record t (Crash { point = Crash_mid_snapshot; op })
    end;
    hit
  end

let crashed t = t.crashed

let injected t = t.injected

let trace t = List.rev t.trace

let trace_dropped t = t.trace_dropped

let pp_fault ppf = function
  | Handler_raise { subscriber } ->
    Format.fprintf ppf "handler-raise %s" subscriber
  | Link_drop { src; dst } -> Format.fprintf ppf "link-drop %d->%d" src dst
  | Link_duplicate { src; dst } ->
    Format.fprintf ppf "link-duplicate %d->%d" src dst
  | Link_delay { src; dst } -> Format.fprintf ppf "link-delay %d->%d" src dst
  | Broker_pause { node } -> Format.fprintf ppf "broker-pause %d" node
  | Crash { point; op } ->
    Format.fprintf ppf "%s op %d" (crash_point_name point) op
