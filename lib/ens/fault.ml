module Prng = Genas_prng.Prng

exception Injected of string

type spec = {
  handler_failure : (string * float) list;
  link_drop : float;
  link_duplicate : float;
  link_delay : float;
  broker_pause : float;
}

let none =
  {
    handler_failure = [];
    link_drop = 0.0;
    link_duplicate = 0.0;
    link_delay = 0.0;
    broker_pause = 0.0;
  }

type fault =
  | Handler_raise of { subscriber : string }
  | Link_drop of { src : int; dst : int }
  | Link_duplicate of { src : int; dst : int }
  | Link_delay of { src : int; dst : int }
  | Broker_pause of { node : int }

let trace_cap = 65536

type t = {
  seed : int;
  spec : spec;
  (* One substream per fault category: injecting (or removing) handler
     faults never perturbs the link draws, and vice versa — the same
     seed replays the same per-category decision sequence. *)
  handler_rng : Prng.t;
  link_rng : Prng.t;
  broker_rng : Prng.t;
  mutable injected : int;
  mutable trace : fault list;  (** newest first, bounded *)
  mutable trace_len : int;
  mutable trace_dropped : int;
}

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.plan: %s probability out of [0,1]" what)

let plan ~seed spec =
  check_prob "link_drop" spec.link_drop;
  check_prob "link_duplicate" spec.link_duplicate;
  check_prob "link_delay" spec.link_delay;
  check_prob "broker_pause" spec.broker_pause;
  List.iter (fun (s, p) -> check_prob ("handler_failure " ^ s) p)
    spec.handler_failure;
  if spec.link_drop +. spec.link_duplicate +. spec.link_delay > 1.0 then
    invalid_arg "Fault.plan: link fault probabilities sum above 1";
  let base = Prng.create ~seed in
  let handler_rng = Prng.split base in
  let link_rng = Prng.split base in
  let broker_rng = Prng.split base in
  {
    seed;
    spec;
    handler_rng;
    link_rng;
    broker_rng;
    injected = 0;
    trace = [];
    trace_len = 0;
    trace_dropped = 0;
  }

let seed t = t.seed

let spec t = t.spec

let record t fault =
  t.injected <- t.injected + 1;
  if t.trace_len >= trace_cap then t.trace_dropped <- t.trace_dropped + 1
  else begin
    t.trace <- fault :: t.trace;
    t.trace_len <- t.trace_len + 1
  end

let handler_raises t ~subscriber =
  match List.assoc_opt subscriber t.spec.handler_failure with
  | None | Some 0.0 -> false
  | Some p ->
    let hit = Prng.bernoulli t.handler_rng ~p in
    if hit then record t (Handler_raise { subscriber });
    hit

let link_fate t ~src ~dst =
  let { link_drop = d; link_duplicate = u; link_delay = y; _ } = t.spec in
  if d = 0.0 && u = 0.0 && y = 0.0 then `Forward
  else begin
    let x = Prng.float t.link_rng ~bound:1.0 in
    if x < d then begin
      record t (Link_drop { src; dst });
      `Drop
    end
    else if x < d +. u then begin
      record t (Link_duplicate { src; dst });
      `Duplicate
    end
    else if x < d +. u +. y then begin
      record t (Link_delay { src; dst });
      `Delay
    end
    else `Forward
  end

let broker_pauses t ~node =
  if t.spec.broker_pause = 0.0 then false
  else begin
    let hit = Prng.bernoulli t.broker_rng ~p:t.spec.broker_pause in
    if hit then record t (Broker_pause { node });
    hit
  end

let injected t = t.injected

let trace t = List.rev t.trace

let trace_dropped t = t.trace_dropped

let pp_fault ppf = function
  | Handler_raise { subscriber } ->
    Format.fprintf ppf "handler-raise %s" subscriber
  | Link_drop { src; dst } -> Format.fprintf ppf "link-drop %d->%d" src dst
  | Link_duplicate { src; dst } ->
    Format.fprintf ppf "link-duplicate %d->%d" src dst
  | Link_delay { src; dst } -> Format.fprintf ppf "link-delay %d->%d" src dst
  | Broker_pause { node } -> Format.fprintf ppf "broker-pause %d" node
