module Prng = Genas_prng.Prng
module Metrics = Genas_obs.Metrics
module Trace = Genas_obs.Trace

type policy = {
  max_attempts : int;
  backoff_ns : float;
  multiplier : float;
  jitter : float;
  jitter_seed : int;
  trip_after : int;
  cooldown : int;
}

let default_policy =
  {
    max_attempts = 1;
    backoff_ns = 1_000_000.0;
    multiplier = 2.0;
    jitter = 0.5;
    jitter_seed = 0x5eed;
    trip_after = 0;
    cooldown = 16;
  }

let retry_policy ?(max_attempts = 3) ?(backoff_ns = 1_000_000.0)
    ?(multiplier = 2.0) ?(jitter = 0.5) ?(jitter_seed = 0x5eed)
    ?(trip_after = 0) ?(cooldown = 16) () =
  { max_attempts; backoff_ns; multiplier; jitter; jitter_seed; trip_after;
    cooldown }

let validate_policy p =
  if p.max_attempts < 1 then
    invalid_arg "Supervise: max_attempts must be at least 1";
  if p.backoff_ns < 0.0 then invalid_arg "Supervise: negative backoff";
  if p.multiplier < 1.0 then
    invalid_arg "Supervise: multiplier must be at least 1";
  if not (p.jitter >= 0.0 && p.jitter <= 1.0) then
    invalid_arg "Supervise: jitter must lie in [0,1]";
  if p.trip_after < 0 then invalid_arg "Supervise: negative trip_after";
  if p.trip_after > 0 && p.cooldown < 1 then
    invalid_arg "Supervise: cooldown must be positive when tripping is enabled"

type circuit_state = Closed | Open | Half_open

(* Closed carries the consecutive terminal-failure count; Open the
   number of deliveries short-circuited since the trip. *)
type circuit = { mutable state : circuit_state; mutable count : int }

type outcome = Delivered | Failed | Short_circuited

type record = {
  seq : int;
  subscriber : string;
  attempts : int;
  backoffs_ns : float list;
  outcome : outcome;
  error : string option;
}

type instruments = {
  failures_total : Metrics.counter;
  retries_total : Metrics.counter;
  backoff_ns_hist : Metrics.histogram;
  deadletters_total : Metrics.counter;
  deadletter_size : Metrics.gauge;
  deadletter_dropped_total : Metrics.counter;
  circuit_trips_total : Metrics.counter;
  circuits_open : Metrics.gauge;
  short_circuited_total : Metrics.counter;
}

let make_instruments registry prefix =
  let n suffix = prefix ^ suffix in
  {
    failures_total =
      Metrics.counter registry (n "_handler_failures_total")
        ~help:"Delivery attempts that raised (including injected faults)";
    retries_total =
      Metrics.counter registry (n "_retries_total")
        ~help:"Delivery attempts beyond the first";
    backoff_ns_hist =
      Metrics.histogram registry (n "_retry_backoff_ns")
        ~help:"Backoff scheduled before each retry (ns)";
    deadletters_total =
      Metrics.counter registry (n "_deadletters_total")
        ~help:"Notifications that failed terminally (dead-lettered)";
    deadletter_size =
      Metrics.gauge registry (n "_deadletter_size")
        ~help:"Dead-letter queue length at the last terminal failure";
    deadletter_dropped_total =
      Metrics.counter registry (n "_deadletter_dropped_total")
        ~help:"Dead-letter entries evicted by the capacity bound";
    circuit_trips_total =
      Metrics.counter registry (n "_circuit_trips_total")
        ~help:"Circuit-breaker trips (including half-open reopens)";
    circuits_open =
      Metrics.gauge registry (n "_circuits_open")
        ~help:"Subscriber circuits currently open";
    short_circuited_total =
      Metrics.counter registry (n "_short_circuited_total")
        ~help:"Deliveries skipped because the subscriber's circuit was open";
  }

let trace_cap = 4096

type t = {
  policy : policy;
  rng : Prng.t;  (** jitter stream; consumed only when a retry happens *)
  mutable jitter_draws : int;
      (** draws consumed from [rng] so far — journaled so recovery can
          fast-forward a fresh stream to the same position *)
  circuits : (string, circuit) Hashtbl.t;
  dlq : Deadletter.t;
  mutable deliveries : int;
  mutable delivered : int;
  mutable failures : int;  (** failed attempts *)
  mutable retries : int;
  mutable deadlettered : int;
  mutable short_circuited : int;
  mutable trips : int;
  mutable open_circuits : int;
  mutable trace : record list;  (** newest first, bounded *)
  mutable trace_len : int;
  mutable trace_dropped : int;
  tracer : Trace.t option;
  instruments : instruments option;
}

let create ?(policy = default_policy) ?(deadletter_capacity = 1024) ?metrics
    ?tracer ~prefix () =
  validate_policy policy;
  {
    policy;
    rng = Prng.create ~seed:policy.jitter_seed;
    jitter_draws = 0;
    circuits = Hashtbl.create 16;
    dlq = Deadletter.create ~capacity:deadletter_capacity ();
    deliveries = 0;
    delivered = 0;
    failures = 0;
    retries = 0;
    deadlettered = 0;
    short_circuited = 0;
    trips = 0;
    open_circuits = 0;
    trace = [];
    trace_len = 0;
    trace_dropped = 0;
    tracer;
    instruments =
      Option.map (fun registry -> make_instruments registry prefix) metrics;
  }

let policy t = t.policy

let deadletter t = t.dlq

let with_ins t f = match t.instruments with None -> () | Some ins -> f ins

let circuit t subscriber =
  match Hashtbl.find_opt t.circuits subscriber with
  | None -> Closed
  | Some c -> c.state

let circuit_of t subscriber =
  match Hashtbl.find_opt t.circuits subscriber with
  | Some c -> c
  | None ->
    let c = { state = Closed; count = 0 } in
    Hashtbl.replace t.circuits subscriber c;
    c

let set_open_count t delta =
  t.open_circuits <- t.open_circuits + delta;
  with_ins t (fun ins ->
      Metrics.Gauge.set ins.circuits_open (float_of_int t.open_circuits))

let trip t c =
  if c.state <> Open then set_open_count t 1;
  c.state <- Open;
  c.count <- 0;
  t.trips <- t.trips + 1;
  with_ins t (fun ins -> Metrics.Counter.incr ins.circuit_trips_total)

let close t c =
  if c.state = Open then set_open_count t (-1);
  c.state <- Closed;
  c.count <- 0

let record_trace t r =
  (* Only eventful deliveries (a retry, a failure, a short-circuit) are
     traced; clean first-attempt deliveries stay allocation-light. *)
  if r.attempts > 1 || r.outcome <> Delivered then begin
    if t.trace_len >= trace_cap then t.trace_dropped <- t.trace_dropped + 1
    else begin
      t.trace <- r :: t.trace;
      t.trace_len <- t.trace_len + 1
    end
  end

let dead_letter t notification ~attempts ~error ~seq =
  t.deadlettered <- t.deadlettered + 1;
  Deadletter.push t.dlq { Deadletter.notification; attempts; error; seq };
  with_ins t (fun ins ->
      Metrics.Counter.incr ins.deadletters_total;
      Metrics.Gauge.set ins.deadletter_size
        (float_of_int (Deadletter.length t.dlq));
      let dropped = Deadletter.dropped t.dlq in
      let seen = Metrics.Counter.value ins.deadletter_dropped_total in
      if dropped > seen then
        Metrics.Counter.add ins.deadletter_dropped_total (dropped - seen))

let error_string = function
  | Fault.Injected what -> "injected: " ^ what
  | exn -> Printexc.to_string exn

let backoff_for t ~attempt =
  let base =
    t.policy.backoff_ns *. (t.policy.multiplier ** float_of_int (attempt - 1))
  in
  let b =
    if t.policy.jitter = 0.0 then base
    else begin
      t.jitter_draws <- t.jitter_draws + 1;
      base *. (1.0 -. (t.policy.jitter *. Prng.float t.rng ~bound:1.0))
    end
  in
  with_ins t (fun ins -> Metrics.Histogram.observe ins.backoff_ns_hist b);
  b

let deliver t ?faults ~subscriber ~handler notification =
  let seq = t.deliveries in
  t.deliveries <- seq + 1;
  (* One span per supervised delivery, one per attempt; a terminal
     failure dumps the flight recorder for the post-mortem. *)
  let dspan =
    match t.tracer with
    | Some tr when Trace.active tr ->
      let s = Trace.start_span tr ~name:"deliver" in
      Trace.add_attr tr "subscriber" subscriber;
      s
    | Some _ | None -> None
  in
  let finish_deliver ?error () =
    match t.tracer with
    | None -> ()
    | Some tr -> Trace.finish_span tr ?error dspan
  in
  let finish_short_circuit c =
    c.count <- c.count + 1;
    t.short_circuited <- t.short_circuited + 1;
    with_ins t (fun ins -> Metrics.Counter.incr ins.short_circuited_total);
    dead_letter t notification ~attempts:0 ~error:"circuit open" ~seq;
    record_trace t
      { seq; subscriber; attempts = 0; backoffs_ns = []; outcome = Short_circuited;
        error = Some "circuit open" };
    finish_deliver ~error:"circuit open" ();
    false
  in
  let attempt_raw () =
    (* A planned fault replaces the real handler invocation: the
       subscriber is simulated as raising. Retries re-draw. *)
    match faults with
    | Some plan when Fault.handler_raises plan ~subscriber ->
      Error (Fault.Injected subscriber)
    | Some _ | None -> (
      match handler notification with
      | () -> Ok ()
      | exception exn -> Error exn)
  in
  let attempt_once () =
    match t.tracer with
    | Some tr when Trace.active tr ->
      let s = Trace.start_span tr ~name:"deliver.attempt" in
      let r = attempt_raw () in
      (match r with
      | Ok () -> Trace.finish_span tr s
      | Error exn -> Trace.finish_span tr ~error:(error_string exn) s);
      r
    | Some _ | None -> attempt_raw ()
  in
  let run_attempts ~max_attempts =
    let backoffs = ref [] in
    let rec go attempt =
      match attempt_once () with
      | Ok () -> (attempt, List.rev !backoffs, None)
      | Error exn ->
        t.failures <- t.failures + 1;
        with_ins t (fun ins -> Metrics.Counter.incr ins.failures_total);
        if attempt >= max_attempts then (attempt, List.rev !backoffs, Some exn)
        else begin
          backoffs := backoff_for t ~attempt :: !backoffs;
          t.retries <- t.retries + 1;
          with_ins t (fun ins -> Metrics.Counter.incr ins.retries_total);
          go (attempt + 1)
        end
    in
    go 1
  in
  let supervised ~probe c =
    let max_attempts = if probe then 1 else t.policy.max_attempts in
    let attempts, backoffs_ns, err = run_attempts ~max_attempts in
    match err with
    | None ->
      close t c;
      t.delivered <- t.delivered + 1;
      record_trace t
        { seq; subscriber; attempts; backoffs_ns; outcome = Delivered;
          error = None };
      finish_deliver ();
      true
    | Some exn ->
      let error = error_string exn in
      dead_letter t notification ~attempts ~error ~seq;
      if probe then trip t c
      else begin
        c.count <- c.count + 1;
        if t.policy.trip_after > 0 && c.count >= t.policy.trip_after then
          trip t c
      end;
      record_trace t
        { seq; subscriber; attempts; backoffs_ns; outcome = Failed;
          error = Some error };
      finish_deliver ~error ();
      (match t.tracer with
      | None -> ()
      | Some tr ->
        ignore
          (Trace.record_crash tr
             ~reason:
               (Printf.sprintf "terminal delivery failure: %s (%s)" subscriber
                  error)));
      false
  in
  if t.policy.trip_after = 0 then
    (* Breaker disabled: no circuit bookkeeping at all. *)
    supervised ~probe:false { state = Closed; count = 0 }
  else begin
    let c = circuit_of t subscriber in
    match c.state with
    | Closed -> supervised ~probe:false c
    | Half_open -> supervised ~probe:true c
    | Open ->
      if c.count + 1 >= t.policy.cooldown then begin
        set_open_count t (-1);
        c.state <- Half_open;
        c.count <- 0;
        supervised ~probe:true c
      end
      else finish_short_circuit c
  end

let deliveries t = t.deliveries

let delivered t = t.delivered

let failures t = t.failures

let retries t = t.retries

let deadlettered t = t.deadlettered

let short_circuited t = t.short_circuited

let trips t = t.trips

let trace t = List.rev t.trace

let trace_dropped t = t.trace_dropped

let circuits t =
  Hashtbl.fold (fun s c acc -> (s, c.state, c.count) :: acc) t.circuits []
  |> List.sort compare

module Export = struct
  type nonrec t = {
    deliveries : int;
    delivered : int;
    failures : int;
    retries : int;
    deadlettered : int;
    short_circuited : int;
    trips : int;
    jitter_draws : int;
    circuits : (string * circuit_state * int) list;
  }
end

let export t =
  {
    Export.deliveries = t.deliveries;
    delivered = t.delivered;
    failures = t.failures;
    retries = t.retries;
    deadlettered = t.deadlettered;
    short_circuited = t.short_circuited;
    trips = t.trips;
    jitter_draws = t.jitter_draws;
    circuits = circuits t;
  }

let import t (e : Export.t) =
  if e.Export.jitter_draws < t.jitter_draws then
    Error "Supervise.import: jitter stream ahead of the exported position"
  else begin
    with_ins t (fun ins ->
        let bump counter now target =
          Metrics.Counter.add counter (Stdlib.max 0 (target - now))
        in
        bump ins.failures_total t.failures e.Export.failures;
        bump ins.retries_total t.retries e.Export.retries;
        bump ins.deadletters_total t.deadlettered e.Export.deadlettered;
        bump ins.circuit_trips_total t.trips e.Export.trips;
        bump ins.short_circuited_total t.short_circuited
          e.Export.short_circuited;
        Metrics.Gauge.set ins.deadletter_size
          (float_of_int (Deadletter.length t.dlq));
        let dropped = Deadletter.dropped t.dlq in
        let seen = Metrics.Counter.value ins.deadletter_dropped_total in
        if dropped > seen then
          Metrics.Counter.add ins.deadletter_dropped_total (dropped - seen));
    (* Fast-forward the jitter stream: re-create positions by discarding
       the draws the original consumed before the export. *)
    for _ = t.jitter_draws + 1 to e.Export.jitter_draws do
      ignore (Prng.float t.rng ~bound:1.0)
    done;
    t.jitter_draws <- e.Export.jitter_draws;
    Hashtbl.reset t.circuits;
    let opens = ref 0 in
    List.iter
      (fun (s, state, count) ->
        if state = Open then incr opens;
        Hashtbl.replace t.circuits s { state; count })
      e.Export.circuits;
    set_open_count t (!opens - t.open_circuits);
    t.deliveries <- e.Export.deliveries;
    t.delivered <- e.Export.delivered;
    t.failures <- e.Export.failures;
    t.retries <- e.Export.retries;
    t.deadlettered <- e.Export.deadlettered;
    t.short_circuited <- e.Export.short_circuited;
    t.trips <- e.Export.trips;
    Ok ()
  end

let pp_outcome ppf = function
  | Delivered -> Format.pp_print_string ppf "delivered"
  | Failed -> Format.pp_print_string ppf "failed"
  | Short_circuited -> Format.pp_print_string ppf "short-circuited"

let pp_record ppf r =
  Format.fprintf ppf "@[<h>#%d %s: %a after %d attempt%s%t%t@]" r.seq
    r.subscriber pp_outcome r.outcome r.attempts
    (if r.attempts = 1 then "" else "s")
    (fun ppf ->
      match r.backoffs_ns with
      | [] -> ()
      | bs -> Format.fprintf ppf " (%d backoff%s)" (List.length bs)
                (if List.length bs = 1 then "" else "s"))
    (fun ppf ->
      match r.error with
      | None -> ()
      | Some e -> Format.fprintf ppf ": %s" e)
