(* A relay broker: one node that is simultaneously a served broker
   (downstream face, {!Broker_server}) and a client of another broker
   (upstream face, {!Broker_client}), spliced together so chain and
   tree topologies deliver exactly what one flat {!Router} would.

   The splice is four rules:

   - {b subscriptions up}: every distinct profile body subscribed by a
     downstream peer is mirrored upstream through
     {!Broker_client.forward_profile}, refcounted by body — N
     downstream subscribers to one body cost one upstream forward, and
     the client's own lattice then applies covering minimization on
     top. Mirrors retire only on {e explicit} downstream unsubscribes:
     a dropped downstream connection keeps its forwards alive
     ("sticky"), because the peer is expected to reconnect and replay,
     and retiring mid-reconnect would open a data-loss window upstream.

   - {b events up}: a publish accepted from a downstream peer is
     forwarded upstream with its origin preserved
     ({!Broker_client.forward_up}); while the upstream link is down
     the batches buffer in the client's outbox and flush after
     auto-reconnect.

   - {b events down}: an upstream delivery is re-published into the
     served broker with its origin preserved, so downstream peers
     receive it under the server's origin-aware no-echo rule.

   - {b no echo}: an upstream delivery whose origin is this relay or
     any node ever seen below it is dropped before application — it
     entered the mesh through us, so everyone below already has it.
     Replayed frames carry no origin; they are covered instead by the
     applied-set dedup, because {!Broker_client.forward_up} marks the
     upstream cursors of everything we sent up as applied.

   Origin tags are node names, so names must be unique mesh-wide. *)

module Schema = Genas_model.Schema
module Event = Genas_model.Event

type t = {
  name : string;
  broker : Broker.t;
  owns_broker : bool;
  server : Broker_server.t;
  mutable client : Broker_client.t option;  (* None only mid-create *)
  mu : Mutex.t;
  origins_below : (string, unit) Hashtbl.t;
  fwd : (string, int * int) Hashtbl.t;  (* body -> (client token, refcount) *)
}

let name t = t.name

let server t = t.server

let client t = Option.get t.client

let broker t = t.broker

let origins_below t =
  Mutex.lock t.mu;
  let l = Hashtbl.fold (fun o () acc -> o :: acc) t.origins_below [] in
  Mutex.unlock t.mu;
  List.sort String.compare l

let create ?(seed = Transport.default_seed) ?journal ?metrics ?tracer
    ?(heartbeat = Some Transport.default_heartbeat)
    ?(reconnect = Supervise.retry_policy ~backoff_ns:5e7 ~jitter:0.5 ())
    ?(deadline_s = 30.0) ?max_queue ?tick_s ?(start = true) ?broker:broker_arg
    ~name ~up ~listen schema =
  let owns_broker, broker =
    match broker_arg with
    | Some b -> (false, b)
    | None -> (true, Broker.create ?journal ?metrics schema)
  in
  let mu = Mutex.create () in
  let origins_below = Hashtbl.create 8 in
  let fwd = Hashtbl.create 8 in
  (* The server and client each need the other: the server's hooks
     forward through the client, the client's delivery path publishes
     through the server. The server exists first (unstarted — hooks
     cannot fire before [serve]/[start]); its hooks reach the client
     through this cell. *)
  let client_ref = ref None in
  let with_client f = match !client_ref with Some c -> f c | None -> () in
  let on_accept ~conn_id:_ ~origin ~ctx events =
    Mutex.lock mu;
    Hashtbl.replace origins_below origin ();
    Mutex.unlock mu;
    (* [ctx] is the server's own hop span (when tracing), so the next
       hop up parents under this relay, not under the original leaf. *)
    with_client (fun c -> Broker_client.forward_up ~ctx c ~origin events)
  in
  (* Lock order, load-bearing: [mu] is only ever held alone. The
     upstream client's own lock is taken by [forward_profile] /
     [retire_profile] / [forward_up], and the client calls back into
     [skip_origin] (which takes [mu]) while holding it — so holding
     [mu] across a client call would deadlock. A placeholder entry
     ([-1] token) claims a body under [mu] so concurrent subscribers
     refcount one mirror; the real token is patched in afterwards. *)
  let on_subscribe ~conn_id:_ ~token:_ ~subscriber:_ ~body =
    Mutex.lock mu;
    let claim =
      match Hashtbl.find_opt fwd body with
      | Some (tok, n) ->
        Hashtbl.replace fwd body (tok, n + 1);
        false
      | None ->
        Hashtbl.replace fwd body (-1, 1);
        true
    in
    Mutex.unlock mu;
    if claim then
      with_client (fun c ->
          match Broker_client.forward_profile c ~subscriber:name body with
          | Error _ -> ()
          | Ok tok ->
            Mutex.lock mu;
            (match Hashtbl.find_opt fwd body with
            | Some (_, n) -> Hashtbl.replace fwd body (tok, n)
            | None -> ());
            Mutex.unlock mu)
  in
  let on_unsubscribe ~conn_id:_ ~token:_ ~body =
    Mutex.lock mu;
    let retire =
      match Hashtbl.find_opt fwd body with
      | Some (tok, 1) ->
        Hashtbl.remove fwd body;
        if tok < 0 then None else Some tok
      | Some (tok, n) ->
        Hashtbl.replace fwd body (tok, n - 1);
        None
      | None -> None
    in
    Mutex.unlock mu;
    match retire with
    | Some tok -> with_client (fun c -> Broker_client.retire_profile c tok)
    | None -> ()
  in
  let server =
    Broker_server.create ~seed ~name ~role:"relay" ?metrics ?tracer ~heartbeat
      ?max_queue ~on_accept ~on_subscribe ~on_unsubscribe ~broker listen
  in
  let skip_origin o =
    String.equal o name
    ||
    (Mutex.lock mu;
     let below = Hashtbl.mem origins_below o in
     Mutex.unlock mu;
     below)
  in
  let on_deliver ~cursor:_ ~idx:_ ~origin ~ctx event =
    let via =
      match !client_ref with Some c -> Broker_client.upstream c | None -> ""
    in
    ignore (Broker_server.publish ~origin ~via ~ctx server [| event |])
  in
  match
    Broker_client.connect ~name ~seed ~deadline_s ~heartbeat ~reconnect
      ?metrics ?tracer ?tick_s ~auto_drain:true ~on_deliver ~skip_origin
      ~local:broker schema up
  with
  | Error e ->
    Broker_server.stop server;
    if owns_broker then Broker.close broker;
    Error (Printf.sprintf "relay %s: upstream %s: %s" name
             (Transport.addr_to_string up) e)
  | Ok c ->
    client_ref := Some c;
    (* A Status_req from below answers with this relay's row followed
       by whatever the rest of the upstream chain reports — each hop
       prepends itself, so the list arrives in hop order. *)
    Broker_server.set_on_status server (fun () ->
        Broker_server.status server
        ::
        (match Broker_client.status_request c with
        | Ok nodes -> nodes
        | Error _ -> []));
    let t =
      { name; broker; owns_broker; server; client = Some c; mu;
        origins_below; fwd }
    in
    if start then Broker_server.start t.server;
    Ok t

(* Publish at the relay itself: downstream via the served broker,
   upstream via the outbox (both tagged with the relay's name). *)
let publish t events =
  let cursor = Broker_server.publish t.server events in
  (match t.client with
  | Some c -> Broker_client.forward_up c ~origin:t.name events
  | None -> ());
  cursor

let close t =
  (match t.client with Some c -> Broker_client.close c | None -> ());
  Broker_server.stop t.server;
  if t.owns_broker then Broker.close t.broker
