(** A relay broker: multi-hop peering over the wire protocol.

    One relay node serves downstream peers ({!Broker_server}) while
    being a client of an upstream broker ({!Broker_client}), spliced
    so that chain and tree topologies deliver {e bit-identically} to a
    single flat {!Router}:

    - downstream subscriptions are mirrored upstream, refcounted by
      profile body and covering-minimized by the client's lattice;
    - downstream publishes forward upstream with their origin
      preserved, buffering in an outbox while the upstream link heals;
    - upstream deliveries re-publish into the served broker, so
      downstream peers receive them under origin-aware no-echo;
    - deliveries originating at this relay or below it are dropped
      before application (they entered the mesh through us).

    Mirrored forwards retire only on explicit downstream unsubscribes
    — a dropped downstream connection keeps its forwards alive so its
    reconnect + replay finds the events it missed (sticky forwards).

    Origin tags are node names: names must be unique mesh-wide.
    See docs/NETWORKING.md, "Multi-hop relays". *)

type t

val create :
  ?seed:int ->
  ?journal:Journal.config ->
  ?metrics:Genas_obs.Metrics.t ->
  ?tracer:Genas_obs.Trace.t ->
  ?heartbeat:Transport.heartbeat option ->
  ?reconnect:Supervise.policy ->
  ?deadline_s:float ->
  ?max_queue:int ->
  ?tick_s:float ->
  ?start:bool ->
  ?broker:Broker.t ->
  name:string ->
  up:Transport.addr ->
  listen:Transport.addr ->
  Genas_model.Schema.t ->
  (t, string) result
(** Create the relay's broker (journaled when [journal] is given — a
    relay that should survive kill/restart of its upstream {e must} be
    journaled or its downstream replays lose history), connect
    upstream (fails if the upstream is unreachable; afterwards the
    [reconnect] policy — on by default — heals the link
    automatically), and start serving [listen]. [start = false] skips
    spawning the accept loop: the caller runs it, e.g.
    [Broker_server.serve ~connections (server t)] for a bounded
    foreground run (the CLI [relay] command). [broker] substitutes a
    caller-owned broker (e.g. one from [Broker.recover]); the caller
    then owns its lifecycle.

    With [tracer] (shared by both faces), wire trace contexts flow
    through the relay in both directions: a downstream publish's hop
    span parents the upstream forward, an upstream delivery's context
    parents the downstream re-publish. The relay also answers
    [Status_req] with its own row followed by the rest of its
    upstream chain ({!Broker_server.set_on_status}). *)

val publish : t -> Genas_model.Event.t array -> int
(** Publish at the relay itself: delivered downstream through the
    served broker and forwarded upstream through the outbox, both
    origin-tagged with the relay's name. Returns the local journal
    cursor of the first record. *)

val name : t -> string

val server : t -> Broker_server.t
(** The downstream face. *)

val client : t -> Broker_client.t
(** The upstream face (reconnects, outbox depth, applied counters). *)

val broker : t -> Broker.t

val origins_below : t -> string list
(** Node names ever seen as publish origins from downstream,
    ascending — the no-echo filter set. *)

val close : t -> unit
