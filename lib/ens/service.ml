module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Lang = Genas_profile.Lang
module Ops = Genas_filter.Ops

type t = {
  schemas : (string, Schema.t) Hashtbl.t;
  brokers : (string, string * Broker.t) Hashtbl.t;  (** name → (schema, broker) *)
  metrics : Genas_obs.Metrics.t option;
      (** service-wide default registry for brokers created without an
          explicit one *)
}

let create ?metrics () =
  { schemas = Hashtbl.create 8; brokers = Hashtbl.create 8; metrics }

let define_schema t ~name specs =
  if Hashtbl.mem t.schemas name then
    Error (Printf.sprintf "schema %S already defined" name)
  else
    match Schema.create specs with
    | Error e -> Error e
    | Ok schema ->
      Hashtbl.replace t.schemas name schema;
      Ok ()

let ( let* ) = Result.bind

let define_schema_text t ~name lines =
  let* specs =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        match String.index_opt line ':' with
        | None -> Error (Printf.sprintf "missing ':' in %S" line)
        | Some i ->
          let attr = String.trim (String.sub line 0 i) in
          let dom_src =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          let* dom = Domain.of_string dom_src in
          Ok ((attr, dom) :: acc))
      (Ok []) lines
  in
  define_schema t ~name (List.rev specs)

let find_schema t name = Hashtbl.find_opt t.schemas name

let schemas t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.schemas [] |> List.sort String.compare

let create_broker t ~name ~schema ?spec ?adaptive ?metrics ?retry ?faults
    ?journal () =
  if Hashtbl.mem t.brokers name then
    Error (Printf.sprintf "broker %S already defined" name)
  else
    match find_schema t schema with
    | None -> Error (Printf.sprintf "unknown schema %S" schema)
    | Some s ->
      let metrics = match metrics with Some _ -> metrics | None -> t.metrics in
      Hashtbl.replace t.brokers name
        (schema, Broker.create ?spec ?adaptive ?metrics ?retry ?faults ?journal s);
      Ok ()

let recover_broker t ~name ~schema ?spec ?adaptive ?metrics ?retry ?faults
    ?handlers ~journal () =
  if Hashtbl.mem t.brokers name then
    Error (Printf.sprintf "broker %S already defined" name)
  else
    match find_schema t schema with
    | None -> Error (Printf.sprintf "unknown schema %S" schema)
    | Some s ->
      let metrics = match metrics with Some _ -> metrics | None -> t.metrics in
      let* b =
        Broker.recover ?spec ?adaptive ?metrics ?retry ?faults ?handlers
          ~journal s
      in
      Hashtbl.replace t.brokers name (schema, b);
      Ok ()

let find_broker t name = Option.map snd (Hashtbl.find_opt t.brokers name)

let brokers t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.brokers [] |> List.sort String.compare

let with_broker t name f =
  match Hashtbl.find_opt t.brokers name with
  | None -> Error (Printf.sprintf "unknown broker %S" name)
  | Some (_, b) -> f b

let subscribe t ~broker ~subscriber src handler =
  with_broker t broker (fun b -> Broker.subscribe_text b ~subscriber src handler)

let publish t ~broker src =
  with_broker t broker (fun b ->
      let* event = Lang.parse_event (Broker.schema b) src in
      Ok (Broker.publish b event))

let report t ~broker =
  with_broker t broker (fun b ->
      let ops = Broker.ops b in
      Ok
        (Printf.sprintf
           "%d subscription(s), %d event(s) filtered, %.2f comparisons/event, \
            %d notification(s), %d adaptive rebuild(s)"
           (Broker.subscription_count b)
           (Broker.published b)
           (Ops.per_event ops)
           (Broker.notifications b)
           (Broker.rebuilds b)))
