(** A downstream broker node: local matching, covering-gated upstream
    forwarding, and journal-cursor catch-up over the wire.

    The client owns a full in-memory {!Broker.t} holding every local
    subscription; handlers fire through the normal supervised delivery
    path whether the triggering event was published locally or arrived
    as a [Deliver] frame. Upstream it forwards only the covering-
    minimal roots of its own subscription lattice — the paper's
    covering relation applied {e across the link}: a subscription
    covered by an already-forwarded profile sends nothing, and a new
    broader profile retires the narrower forwards it demotes
    ({!wire_subscribes}/{!wire_unsubscribes} count the actual frames).
    Delivered events are re-matched locally, so absorbed subscriptions
    still receive exactly their own matches.

    Delivery semantics: the transport is at-least-once (link faults
    duplicate or delay frames; replay overlaps live delivery); applied
    (cursor, idx) pairs are remembered and duplicates dropped, making
    local application exactly-once relative to the server's journal.
    After a disconnect, {!reconnect} re-sends the forwarded set and
    {!replay} redelivers everything after {!complete_to} out of the
    server's WAL. See docs/NETWORKING.md.

    Self-healing (docs/ROBUSTNESS.md): every request takes the
    connection's [deadline_s] and surfaces [Error "timeout"] instead
    of blocking forever; a ticker thread pings idle links, reaps a
    link silent past the heartbeat deadline, and — when a [reconnect]
    policy is given — redials with capped exponential backoff and
    seeded jitter, re-sends the forwarded set, and replays from
    {!complete_to}, so a server kill/restart cycle needs no operator
    action. *)

type t

val connect :
  ?name:string ->
  ?seed:int ->
  ?max_frame:int ->
  ?deadline_s:float ->
  ?heartbeat:Transport.heartbeat option ->
  ?reconnect:Supervise.policy ->
  ?max_backoff_s:float ->
  ?metrics:Genas_obs.Metrics.t ->
  ?tracer:Genas_obs.Trace.t ->
  ?tick_s:float ->
  ?auto_drain:bool ->
  ?inbox_cap:int ->
  ?on_deliver:
    (cursor:int ->
    idx:int ->
    origin:string ->
    ctx:Transport.ctx ->
    Genas_model.Event.t ->
    unit) ->
  ?skip_origin:(string -> bool) ->
  ?local:Broker.t ->
  Genas_model.Schema.t ->
  Transport.addr ->
  (t, string) result
(** Dial, handshake (protocol version + schema fingerprint, under a
    kernel receive deadline), and start the receiver and ticker
    threads. The schema must fingerprint-identically match the
    server's or the handshake is rejected.

    [name] must be unique within a mesh (it is the origin tag for
    no-echo). [deadline_s] (default 30) bounds the handshake and every
    acknowledged request. [heartbeat] (default
    {!Transport.default_heartbeat}; [None] disables liveness) governs
    idle pings and the silent-link reap. [reconnect] arms automatic
    redial: attempts are scheduled at capped ([max_backoff_s], default
    30) exponential backoff with the policy's multiplier and seeded
    jitter; each successful redial re-sends the forwarded set and
    replays from {!complete_to}. [tick_s] (default 0.02) is the ticker
    granularity — also the resolution of request deadlines.
    [auto_drain] applies queued deliveries from the ticker (relays
    need this; interactive callers use {!drain}/{!await_deliveries}).
    [inbox_cap] (default 65536) bounds the receive mailbox — overflow
    tears the link down rather than growing without limit.

    With [tracer], {!publish} runs under a [net.publish] root span
    whose context travels on the wire, and every applied delivery runs
    under a [net.apply] span adopting the [Deliver] frame's context —
    so one publish's causal tree spans every process it touched
    (stitch with {!Genas_obs.Trace.merge_dumps}).

    Relay hooks: [on_deliver] replaces local-broker application
    entirely ([ctx] is the frame's wire trace context, to propagate
    further); [skip_origin] drops a delivery whose (non-empty) origin
    it accepts before application — the cross-hop no-echo predicate.
    [local] substitutes a caller-owned broker for the client's own
    (the caller then also owns its lifecycle). *)

val reconnect : t -> (unit, string) result
(** Drop any current connection, redial, and re-send the forwarded
    subscription set. Cursors and the applied set survive, so a
    following {!replay} is deduplicated. Automatic redial (the
    [reconnect] policy) calls this machinery itself — manual use is
    only needed without a policy. *)

val drop_link : t -> unit
(** Tear down the current connection eagerly (shutdown, join the
    receiver, close) without touching subscriptions or cursors. With
    a redial policy armed this schedules an immediate reconnect —
    which makes it double as a deterministic link-partition
    injection. *)

val close : t -> unit

val connected : t -> bool

val name : t -> string

val local : t -> Broker.t
(** The local broker (all local subscriptions, local counters). *)

(** {1 Operations} *)

val subscribe :
  t ->
  ?subscriber:string ->
  string ->
  Notification.handler ->
  (int, string) result
(** [subscribe t body handler] parses profile-language [body],
    subscribes locally, and forwards upstream {e only if} the profile
    becomes a new covering root. Returns the subscription token. *)

val unsubscribe : t -> int -> (unit, string) result
(** Remove a local subscription; upstream forwards are re-synced to
    the new covering-minimal set (an absorbed profile's removal sends
    nothing; a root's removal may promote formerly-covered ones). *)

val publish : t -> Genas_model.Event.t -> (int, string) result
(** Deliver locally first (origin-node matching), then publish
    upstream and wait for the acknowledgement (bounded by
    [deadline_s]). Returns the local notification count. The
    acknowledged journal cursors are marked applied so a later replay
    never re-delivers the client's own events. *)

val replay : t -> (int * bool, string) result
(** Request catch-up from {!complete_to}: the server re-delivers every
    retained matching publish after it. Returns [(newly_applied,
    complete)]; [complete = false] means a server snapshot discarded
    part of the range. Advances {!complete_to} to the server cursor. *)

(** {1 Relay plumbing}

    Used by {!Relay} to splice a client into a served broker; exposed
    for custom topologies. *)

val forward_profile : t -> ?subscriber:string -> string -> (int, string) result
(** Forward a profile upstream {e without} a local handler (the
    caller's own delivery path — a relay's served broker — handles
    matched events). Covering-gated like {!subscribe}. Wire errors
    are swallowed: the forwarded set is re-synced wholesale on
    reconnect. *)

val retire_profile : t -> int -> unit
(** Remove a {!forward_profile} (or any) subscription token,
    re-syncing the covering-minimal forward set. Unknown tokens are
    ignored. *)

val forward_up :
  ?ctx:Transport.ctx -> t -> origin:string -> Genas_model.Event.t array -> unit
(** Queue an origin-tagged batch for upstream publication and flush
    what the link allows. Batches survive link loss in an outbox and
    are re-sent (in order) after reconnect; acknowledged cursors are
    marked applied so upstream replay never echoes them back. [ctx]
    rides the upstream [Publish] frame so the next hop's span parents
    under the span it was captured from. *)

val outbox_depth : t -> int
(** Batches queued in {!forward_up}'s outbox (0 when the link is
    healthy and caught up). *)

(** {1 Receiving} *)

val drain : t -> int
(** Apply every delivery already queued by the receive thread, without
    blocking. Returns the number applied (duplicates excluded). *)

val await_deliveries : ?timeout:float -> t -> int -> int
(** Block until [n] deliveries were applied by this call or [timeout]
    (default 5s) elapses; returns the number applied. Event-driven:
    the caller parks on the inbox condition variable and is woken by
    the receiver thread on every push (and by the ticker each tick, so
    the deadline holds even on a silent link). *)

(** {1 Chaos hooks} *)

val pause_rx : t -> unit
(** Stop the receiver between frames — the deterministic stand-in for
    a stalled consumer: kernel buffers fill until the server's bounded
    queue trips its slow-consumer policy. *)

val resume_rx : t -> unit

(** {1 Introspection} *)

val status_request : t -> (Transport.node_status list, string) result
(** One [Status_req]/[Status] round trip (bounded by [deadline_s]):
    the upstream node's status first, then — when the upstream is a
    relay — the rest of its chain in hop order. Deliveries arriving
    while waiting are applied as usual. *)

val upstream : t -> string
(** The connected server's node name (from its [Welcome]; [""] before
    the first successful handshake). *)

val complete_to : t -> int
(** Journal cursor up to which this client is known complete (the
    [since] a replay would send). *)

val applied_total : t -> int
(** Remote deliveries applied locally (lifetime). *)

val duplicates_dropped : t -> int
(** Deliveries dropped by (cursor, idx) dedup — duplicate link faults
    and replay overlap. *)

val heartbeat_misses : t -> int
(** Links dropped by this client after a silent heartbeat deadline. *)

val reconnects : t -> int
(** Successful automatic redials. *)

val forwarded_tokens : t -> int list
(** Tokens currently forwarded upstream (the covering-minimal roots),
    ascending. *)

val wire_subscribes : t -> int
(** [Subscribe] frames actually sent (covering suppresses the rest). *)

val wire_unsubscribes : t -> int
