(** A downstream broker node: local matching, covering-gated upstream
    forwarding, and journal-cursor catch-up over the wire.

    The client owns a full in-memory {!Broker.t} holding every local
    subscription; handlers fire through the normal supervised delivery
    path whether the triggering event was published locally or arrived
    as a [Deliver] frame. Upstream it forwards only the covering-
    minimal roots of its own subscription lattice — the paper's
    covering relation applied {e across the link}: a subscription
    covered by an already-forwarded profile sends nothing, and a new
    broader profile retires the narrower forwards it demotes
    ({!wire_subscribes}/{!wire_unsubscribes} count the actual frames).
    Delivered events are re-matched locally, so absorbed subscriptions
    still receive exactly their own matches.

    Delivery semantics: the transport is at-least-once (link faults
    duplicate or delay frames; replay overlaps live delivery); applied
    (cursor, idx) pairs are remembered and duplicates dropped, making
    local application exactly-once relative to the server's journal.
    After a disconnect, {!reconnect} re-sends the forwarded set and
    {!replay} redelivers everything after {!complete_to} out of the
    server's WAL. See docs/NETWORKING.md. *)

type t

val connect :
  ?name:string ->
  ?seed:int ->
  ?max_frame:int ->
  Genas_model.Schema.t ->
  Transport.addr ->
  (t, string) result
(** Dial, handshake (protocol version + schema fingerprint), and
    start the receive thread. The schema must fingerprint-identically
    match the server's or the handshake is rejected. *)

val reconnect : t -> (unit, string) result
(** Drop any current connection, redial, and re-send the forwarded
    subscription set. Cursors and the applied set survive, so a
    following {!replay} is deduplicated. *)

val close : t -> unit

val connected : t -> bool

val name : t -> string

val local : t -> Broker.t
(** The local broker (all local subscriptions, local counters). *)

(** {1 Operations} *)

val subscribe :
  t ->
  ?subscriber:string ->
  string ->
  Notification.handler ->
  (int, string) result
(** [subscribe t body handler] parses profile-language [body],
    subscribes locally, and forwards upstream {e only if} the profile
    becomes a new covering root. Returns the subscription token. *)

val unsubscribe : t -> int -> (unit, string) result
(** Remove a local subscription; upstream forwards are re-synced to
    the new covering-minimal set (an absorbed profile's removal sends
    nothing; a root's removal may promote formerly-covered ones). *)

val publish : t -> Genas_model.Event.t -> (int, string) result
(** Deliver locally first (origin-node matching), then publish
    upstream and wait for the acknowledgement. Returns the local
    notification count. The acknowledged journal cursors are marked
    applied so a later replay never re-delivers the client's own
    events. *)

val replay : t -> (int * bool, string) result
(** Request catch-up from {!complete_to}: the server re-delivers every
    retained matching publish after it. Returns [(newly_applied,
    complete)]; [complete = false] means a server snapshot discarded
    part of the range. Advances {!complete_to} to the server cursor. *)

(** {1 Receiving} *)

val drain : t -> int
(** Apply every delivery already queued by the receive thread, without
    blocking. Returns the number applied (duplicates excluded). *)

val await_deliveries : ?timeout:float -> t -> int -> int
(** Poll {!drain} until [n] deliveries were applied by this call or
    [timeout] (default 5s) elapses; returns the number applied. *)

(** {1 Introspection} *)

val complete_to : t -> int
(** Journal cursor up to which this client is known complete (the
    [since] a replay would send). *)

val applied_total : t -> int
(** Remote deliveries applied to the local broker (lifetime). *)

val duplicates_dropped : t -> int
(** Deliveries dropped by (cursor, idx) dedup — duplicate link faults
    and replay overlap. *)

val forwarded_tokens : t -> int list
(** Tokens currently forwarded upstream (the covering-minimal roots),
    ascending. *)

val wire_subscribes : t -> int
(** [Subscribe] frames actually sent (covering suppresses the rest). *)

val wire_unsubscribes : t -> int
