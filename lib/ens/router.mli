(** Siena-like routed notification network (§2: "In Siena, the concept
    of early rejection on event-level is used for a distributed
    service. The service implements profile and event propagation
    within a network.").

    Brokers form a tree topology. Subscriptions propagate away from
    their subscriber through every broker, but a broker forwards a
    subscription over a link only when no previously forwarded
    subscription *covers* it (attribute-wise denotation containment);
    events flow hop-by-hop, filtered at every broker by its own
    distribution-based engine, and are forwarded only over links whose
    forwarded interests they match. Message counters expose the
    covering optimization's savings.

    Delivery is supervised exactly as in {!Broker} (retry/backoff,
    per-subscriber circuit breaker, bounded dead-letter queue), and a
    {!Fault} plan can additionally drop, duplicate, or delay event
    forwards on links and pause brokers — deterministically, so the
    same seed replays the same network-wide failure trace. See
    docs/ROBUSTNESS.md. *)

type t

type node_id = int

val create :
  ?spec:Genas_core.Reorder.spec ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?deadletter_capacity:int ->
  ?tracer:Genas_obs.Trace.t ->
  ?aggregate:bool ->
  Genas_model.Schema.t ->
  nodes:int ->
  edges:(node_id * node_id) list ->
  (t, string) result
(** The edge list must form a tree: connected, acyclic, node ids in
    [[0, nodes-1]].

    [aggregate] turns on subscription aggregation in every broker's
    engine ({!Genas_core.Engine.create}); the per-link forwarded
    tables are covering lattices either way, so the covered-check that
    gates subscription propagation scans only covering-minimal
    roots. See docs/SCALING.md.

    [tracer] traces each {!publish} as one span tree: a
    ["router.publish"] root (attribute [at] = injection broker), one
    ["router.hop"] span per broker visit (attributes [broker] and, for
    forwarded arrivals, [from]), and the usual ["deliver"] /
    ["deliver.attempt"] spans from the shared delivery supervisor —
    so one event's full multi-hop causal path lands in the tracer's
    flight-recorder ring. Per-broker engines are switched to hotness
    profiling. See docs/OBSERVABILITY.md, "Tracing".

    [metrics] registers network-level counters (subscription/retraction
    messages, event hops, publishes, notifications, link faults,
    delivery supervision; names in docs/OBSERVABILITY.md). Per-broker
    engines are left uninstrumented so that a shared registry never
    aggregates across brokers.

    [retry], [faults], and [deadletter_capacity] configure the
    network-wide delivery supervisor and fault plan as in
    {!Broker.create}; omitted, no faults are injected and fault-free
    routing behavior (delivery order, all message counters) is
    identical to an unsupervised network as long as no handler
    raises. *)

val create_exn :
  ?spec:Genas_core.Reorder.spec ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?deadletter_capacity:int ->
  ?tracer:Genas_obs.Trace.t ->
  ?aggregate:bool ->
  Genas_model.Schema.t ->
  nodes:int ->
  edges:(node_id * node_id) list ->
  t

val line :
  ?spec:Genas_core.Reorder.spec ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?deadletter_capacity:int ->
  ?tracer:Genas_obs.Trace.t ->
  ?aggregate:bool ->
  Genas_model.Schema.t ->
  nodes:int ->
  t
(** Convenience: brokers 0 — 1 — … — (nodes−1). *)

val star :
  ?spec:Genas_core.Reorder.spec ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?deadletter_capacity:int ->
  ?tracer:Genas_obs.Trace.t ->
  ?aggregate:bool ->
  Genas_model.Schema.t ->
  leaves:int ->
  t
(** Convenience: broker 0 in the center, leaves 1…n around it. *)

type sub_handle

val subscribe :
  t ->
  at:node_id ->
  subscriber:string ->
  profile:Genas_profile.Profile.t ->
  Notification.handler ->
  sub_handle
(** Register a subscription at a broker and propagate it (with covering
    pruning) through the network. *)

val unsubscribe : t -> sub_handle -> bool
(** Retract a subscription network-wide; [false] if the handle was
    already retracted. Retraction recomputes the interest tables from
    the remaining subscriptions (a covered subscription that was never
    forwarded may now have to be, and vice versa); the retraction
    fan-out is charged to [unsub_messages] as the number of forwarded
    entries that disappear {e and} are not covered by a surviving
    entry on the same link — retracting a profile while an equivalent
    or broader one remains live costs no messages, because the
    neighbor's routing obligation is unchanged. Per-broker operation
    counters restart, but
    each broker's engine keeps its learned event statistics
    ({!Genas_core.Engine.refresh_keeping_history}): one churn event
    does not reset distribution-based reordering network-wide. *)

val unsub_messages : t -> int

val publish : t -> at:node_id -> Genas_model.Event.t -> int
(** Inject an event at a broker; returns the number of notifications
    delivered (accepted by their handlers) network-wide. Terminally
    failed deliveries are dead-lettered, never counted. *)

val sub_messages : t -> int
(** Inter-broker subscription-propagation messages sent so far. *)

val event_messages : t -> int
(** Inter-broker event forwards sent so far (a duplicated forward
    counts twice; a dropped one still counts — the message left the
    broker and was lost in transit). *)

val notifications : t -> int

(** {1 Fault and supervision inspection} *)

val link_drops : t -> int
(** Forwards lost to injected link faults. *)

val link_duplicates : t -> int

val link_delays : t -> int

val broker_pauses : t -> int
(** Event arrivals deferred by injected broker pauses. *)

val supervisor : t -> Supervise.t
(** The network-wide delivery supervisor. *)

val tracer : t -> Genas_obs.Trace.t option
(** The tracer the network was created with, if any. *)

val dump_flight_recorder : t -> string option
(** On-demand text dump of the tracer's flight recorder; [None] on an
    untraced network. *)

val deadletter : t -> Deadletter.t

val faults : t -> Fault.t option

(** {1 Per-broker inspection} *)

val broker_ops : t -> node_id -> Genas_filter.Ops.t
(** Matching-operation counters of one broker's engine. *)

val broker_stats : t -> node_id -> Genas_core.Stats.t
(** One broker's learned statistics (preserved across
    {!unsubscribe}). *)

val interest_count : t -> node_id -> int
(** Size of a broker's interest table (local + forwarded profiles). *)
