(** Siena-like routed notification network (§2: "In Siena, the concept
    of early rejection on event-level is used for a distributed
    service. The service implements profile and event propagation
    within a network.").

    Brokers form a tree topology. Subscriptions propagate away from
    their subscriber through every broker, but a broker forwards a
    subscription over a link only when no previously forwarded
    subscription *covers* it (attribute-wise denotation containment);
    events flow hop-by-hop, filtered at every broker by its own
    distribution-based engine, and are forwarded only over links whose
    forwarded interests they match. Message counters expose the
    covering optimization's savings. *)

type t

type node_id = int

val create :
  ?spec:Genas_core.Reorder.spec ->
  ?metrics:Genas_obs.Metrics.t ->
  Genas_model.Schema.t ->
  nodes:int ->
  edges:(node_id * node_id) list ->
  (t, string) result
(** The edge list must form a tree: connected, acyclic, node ids in
    [[0, nodes-1]].

    [metrics] registers network-level counters (subscription/retraction
    messages, event hops, publishes, notifications; names in
    docs/OBSERVABILITY.md). Per-broker engines are left uninstrumented
    so that a shared registry never aggregates across brokers. *)

val create_exn :
  ?spec:Genas_core.Reorder.spec ->
  ?metrics:Genas_obs.Metrics.t ->
  Genas_model.Schema.t ->
  nodes:int ->
  edges:(node_id * node_id) list ->
  t

val line :
  ?spec:Genas_core.Reorder.spec ->
  ?metrics:Genas_obs.Metrics.t ->
  Genas_model.Schema.t ->
  nodes:int ->
  t
(** Convenience: brokers 0 — 1 — … — (nodes−1). *)

val star :
  ?spec:Genas_core.Reorder.spec ->
  ?metrics:Genas_obs.Metrics.t ->
  Genas_model.Schema.t ->
  leaves:int ->
  t
(** Convenience: broker 0 in the center, leaves 1…n around it. *)

type sub_handle

val subscribe :
  t ->
  at:node_id ->
  subscriber:string ->
  profile:Genas_profile.Profile.t ->
  Notification.handler ->
  sub_handle
(** Register a subscription at a broker and propagate it (with covering
    pruning) through the network. *)

val unsubscribe : t -> sub_handle -> bool
(** Retract a subscription network-wide; [false] if the handle was
    already retracted. Retraction recomputes the interest tables from
    the remaining subscriptions (a covered subscription that was never
    forwarded may now have to be, and vice versa); the retraction
    fan-out is charged to [unsub_messages] as the number of forwarded
    entries that disappear. Per-broker operation counters restart. *)

val unsub_messages : t -> int

val publish : t -> at:node_id -> Genas_model.Event.t -> int
(** Inject an event at a broker; returns the number of notifications
    delivered network-wide. *)

val sub_messages : t -> int
(** Inter-broker subscription-propagation messages sent so far. *)

val event_messages : t -> int
(** Inter-broker event forwards sent so far. *)

val notifications : t -> int

val broker_ops : t -> node_id -> Genas_filter.Ops.t
(** Matching-operation counters of one broker's engine. *)

val interest_count : t -> node_id -> int
(** Size of a broker's interest table (local + forwarded profiles). *)
