(** Seeded-deterministic binary codec for durable broker state.

    The {!Journal} and {!Snapshot} modules serialize broker operations
    and state through these encoders. The format is little-endian and
    self-delimiting: every on-disk {e frame} is length-prefixed and
    checksummed with seeded FNV-1a 64, so torn writes and bit rot are
    detected structurally — a corrupt tail truncates, it never decodes.
    The checksum seed is part of the journal configuration (and stored
    in the file header), making whole files reproducible byte-for-byte
    from the same operations and seed. *)

exception Corrupt of string
(** Raised by readers on malformed input. {!Journal} and {!Snapshot}
    catch it at the record boundary and turn it into truncation or an
    [Error] — it never escapes to broker callers. *)

val checksum : seed:int -> string -> int64
(** Seeded FNV-1a 64 over the payload bytes. *)

(** {1 Writers} (append to a [Buffer.t]) *)

val w_u8 : Buffer.t -> int -> unit
val w_int : Buffer.t -> int -> unit
val w_bool : Buffer.t -> bool -> unit
val w_float : Buffer.t -> float -> unit
val w_string : Buffer.t -> string -> unit
val w_option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
val w_array : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a array -> unit

(** {1 Readers} (a cursor over an in-memory string) *)

type reader

val reader : ?pos:int -> string -> reader

val r_u8 : reader -> int
val r_int : reader -> int
val r_bool : reader -> bool
val r_float : reader -> float
val r_string : reader -> string
val r_option : (reader -> 'a) -> reader -> 'a option
val r_list : (reader -> 'a) -> reader -> 'a list
val r_array : (reader -> 'a) -> reader -> 'a array

val r_end : reader -> unit
(** @raise Corrupt unless the cursor consumed the whole buffer. *)

(** {1 Frames} *)

val frame_header_len : int
(** Bytes of framing overhead per record (length + checksum). *)

val default_max_frame : int
(** Default payload-size ceiling (16 MiB). A frame's length prefix is
    untrusted input — on a socket an adversarial peer controls it, on
    disk bit rot does — so every reader validates it against a bound
    {e before} sizing an allocation from it. *)

val frame : seed:int -> string -> string
(** Wrap a payload as [u32 LE length | i64 LE checksum | payload].
    @raise Invalid_argument if the payload exceeds the u32 prefix. *)

val parse_frames :
  ?max_frame:int -> seed:int -> string -> pos:int -> string list * int * bool
(** [parse_frames ~seed buf ~pos] decodes consecutive frames starting
    at [pos]; stops at the first torn or checksum-failing frame (or one
    whose declared length is negative or exceeds [max_frame], default
    {!default_max_frame}). Returns [(payloads, valid_end,
    tail_corrupt)]: the decoded payloads in order, the byte offset one
    past the last valid frame, and whether undecodable bytes remain
    after it. *)

val read_frame :
  ?max_frame:int -> seed:int -> in_channel ->
  (string, [ `Eof | `Corrupt of string ]) result
(** Read one frame from a channel (blocking). The 12-byte header is
    read first and its length field bound-checked against [max_frame]
    before the payload buffer is allocated. [`Eof] means the channel
    ended cleanly {e between} frames; a tear inside a frame, a checksum
    mismatch, or an out-of-bounds length is [`Corrupt]. *)

(** {1 Domain encodings} *)

val w_value : Buffer.t -> Genas_model.Value.t -> unit
val r_value : reader -> Genas_model.Value.t

val w_event : Buffer.t -> Genas_model.Event.t -> unit

val r_event : Genas_model.Schema.t -> reader -> Genas_model.Event.t
(** Revalidates against the schema ([Corrupt] on domain violations). *)

val w_notification : Buffer.t -> Notification.t -> unit
val r_notification : Genas_model.Schema.t -> reader -> Notification.t

val w_deadletter : Buffer.t -> Deadletter.entry -> unit
val r_deadletter : Genas_model.Schema.t -> reader -> Deadletter.entry

val w_profile :
  Genas_model.Schema.t -> Buffer.t -> Genas_profile.Profile.t -> unit
(** As name + profile-language body (the {!Store} persistence
    contract: the body re-parses to an equivalent profile). *)

val r_profile : Genas_model.Schema.t -> reader -> Genas_profile.Profile.t

val w_expr : Genas_model.Schema.t -> Buffer.t -> Composite.expr -> unit
val r_expr : Genas_model.Schema.t -> reader -> Composite.expr

val w_ops : Buffer.t -> Genas_filter.Ops.t -> unit
val r_ops : reader -> Genas_filter.Ops.t

val w_estimator : Buffer.t -> Genas_dist.Estimator.Export.t -> unit
val r_estimator : reader -> Genas_dist.Estimator.Export.t

val w_stats : Buffer.t -> Genas_core.Stats.Export.t -> unit
val r_stats : reader -> Genas_core.Stats.Export.t

val w_adaptive : Buffer.t -> Genas_core.Adaptive.Export.t -> unit
val r_adaptive : reader -> Genas_core.Adaptive.Export.t

val w_supervise : Buffer.t -> Supervise.Export.t -> unit
val r_supervise : reader -> Supervise.Export.t

val schema_fingerprint : Genas_model.Schema.t -> string
(** Rendered attribute list, stored in snapshots so recovery under a
    different schema fails loudly instead of decoding garbage. *)
