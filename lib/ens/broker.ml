module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Lang = Genas_profile.Lang
module Engine = Genas_core.Engine
module Adaptive = Genas_core.Adaptive
module Stats = Genas_core.Stats
module Ops = Genas_filter.Ops
module Pool = Genas_filter.Pool
module Flat = Genas_filter.Flat
module Metrics = Genas_obs.Metrics
module Trace = Genas_obs.Trace

type sub_id = Prim_sub of int | Comp_sub of int

type prim_sub = {
  p_subscriber : string;
  p_handler : Notification.handler;
  p_delivered : Metrics.counter option;
}

type comp_sub = {
  subscriber : string;
  detector : Composite.t;
  expr : Composite.expr;  (** source expression, for durable snapshots *)
  prims : Profile.t list;  (** constituents, for the quench table *)
  handler : Notification.handler;
  c_delivered : Metrics.counter option;
}

type instruments = {
  registry : Metrics.t;  (** for per-subscriber delivery counters *)
  published_total : Metrics.counter;
  notifications_total : Metrics.counter;
  quench_invalidations_total : Metrics.counter;
  quench_rebuilds_total : Metrics.counter;
  quench_suppressed_total : Metrics.counter;
  batch_size : Metrics.histogram;
  pool_workers : Metrics.gauge;
}

let make_instruments registry =
  {
    registry;
    published_total =
      Metrics.counter registry "genas_broker_published_total"
        ~help:"Events accepted by Broker.publish";
    notifications_total =
      Metrics.counter registry "genas_broker_notifications_total"
        ~help:"Notifications delivered to subscribers";
    quench_invalidations_total =
      Metrics.counter registry "genas_broker_quench_invalidations_total"
        ~help:"Quench-cache invalidations (subscription changes)";
    quench_rebuilds_total =
      Metrics.counter registry "genas_broker_quench_rebuilds_total"
        ~help:"Quench-table rebuilds after an invalidation";
    quench_suppressed_total =
      Metrics.counter registry "genas_broker_quench_suppressed_total"
        ~help:"Events suppressed by publish_quenched";
    batch_size =
      Metrics.histogram registry "genas_broker_batch_size"
        ~help:"Events per publish_batch call"
        ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.;
                    4096.; 16384.; 65536. |];
    pool_workers =
      Metrics.gauge registry "genas_broker_pool_workers"
        ~help:"Domains of the pool used by the most recent publish_batch \
               (1 = sequential)";
  }

let delivery_counter instruments subscriber =
  match instruments with
  | None -> None
  | Some ins ->
    Some
      (Metrics.counter ins.registry "genas_broker_deliveries_total"
         ~help:"Notifications delivered, per subscriber"
         ~labels:[ ("subscriber", subscriber) ])

type t = {
  schema : Schema.t;
  pset : Profile_set.t;
  engine : Engine.t;
  adaptive : Adaptive.t option;
  handlers : (int, prim_sub) Hashtbl.t;
      (** primitive subscriptions, by profile id *)
  composites : (int, comp_sub) Hashtbl.t;
  mutable next_comp : int;
  mutable quench : Quench.t option;  (** cache; [None] = stale *)
  mutable published : int;
  mutable notifications : int;
  super : Supervise.t;
  faults : Fault.t option;
  journal : Journal.t option;
  tracer : Trace.t option;
  instruments : instruments option;
}

let create ?spec ?adaptive ?metrics ?retry ?faults ?deadletter_capacity ?journal
    ?tracer ?aggregate ?delta_cap schema =
  let pset = Profile_set.create schema in
  let engine = Engine.create ?spec ?metrics ?aggregate ?delta_cap pset in
  (* A traced broker profiles the matcher so every trace can carry the
     traversal path; untraced brokers keep the plain (recorder-free)
     match loop. *)
  (match tracer with
  | Some tr when Genas_obs.Trace.sample_rate tr > 0.0 ->
    Engine.set_profiling engine true
  | _ -> ());
  let adaptive =
    Option.map (fun policy -> Adaptive.create ~policy ?metrics engine) adaptive
  in
  {
    schema;
    pset;
    engine;
    adaptive;
    handlers = Hashtbl.create 64;
    composites = Hashtbl.create 8;
    next_comp = 0;
    quench = None;
    published = 0;
    notifications = 0;
    super =
      Supervise.create ?policy:retry ?deadletter_capacity ?metrics ?tracer
        ~prefix:"genas_broker" ();
    faults;
    journal = Option.map (fun cfg -> Journal.create ?metrics schema cfg) journal;
    tracer;
    instruments = Option.map make_instruments metrics;
  }

let schema t = t.schema

let invalidate_quench t =
  (* A no-op on an already-stale cache: repeated unsubscribes of the
     same id must count (and pay for) at most one invalidation. *)
  if t.quench <> None then begin
    t.quench <- None;
    match t.instruments with
    | None -> ()
    | Some ins -> Metrics.Counter.incr ins.quench_invalidations_total
  end

(* -- Durability ---------------------------------------------------- *)

let snapshot_data t last_op =
  let profiles =
    List.rev
      (Profile_set.fold t.pset ~init:[] ~f:(fun acc id p ->
           let sub =
             match Hashtbl.find_opt t.handlers id with
             | Some s -> s.p_subscriber
             | None -> ""
           in
           (id, sub, p) :: acc))
  in
  let composites =
    Hashtbl.fold
      (fun id c acc -> (id, c.subscriber, c.expr) :: acc)
      t.composites []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  let dlq = Supervise.deadletter t.super in
  {
    Snapshot.last_op;
    fingerprint = Codec.schema_fingerprint t.schema;
    profiles;
    next_profile_id = Profile_set.next_id t.pset;
    composites;
    next_comp = t.next_comp;
    published = t.published;
    notifications = t.notifications;
    ops = Engine.ops t.engine;
    stats = Stats.export (Engine.stats t.engine);
    adaptive = Option.map Adaptive.export t.adaptive;
    supervise = Supervise.export t.super;
    dlq_entries = Deadletter.entries dlq;
    dlq_total = Deadletter.total dlq;
    dlq_dropped = Deadletter.dropped dlq;
  }

let take_snapshot t j =
  let cfg = Journal.configuration j in
  let t0 = Genas_obs.Clock.now_ns () in
  Snapshot.write ?faults:t.faults ?tracer:t.tracer ~dir:cfg.Journal.dir
    ~seed:cfg.Journal.seed ~op:(Journal.ops_logged j) t.schema
    (snapshot_data t (Journal.ops_logged j - 1));
  let dt = Int64.to_float (Int64.sub (Genas_obs.Clock.now_ns ()) t0) in
  Journal.observe_snapshot_install j ~ns:dt;
  Journal.wrote_snapshot j

let snapshot_now t =
  match t.journal with None -> () | Some j -> take_snapshot t j

let journal_op t op =
  match t.journal with
  | None -> ()
  | Some j ->
    (match t.tracer with
    | None -> Journal.append j ?faults:t.faults op
    | Some tr ->
      Trace.with_span tr ~name:"journal.append" (fun () ->
          Journal.append j ?faults:t.faults op));
    if Journal.snapshot_due j then take_snapshot t j

let wal t = t.journal

let subscribe t ~subscriber ~profile handler =
  let id = Engine.add_profile t.engine profile in
  Hashtbl.replace t.handlers id
    {
      p_subscriber = subscriber;
      p_handler = handler;
      p_delivered = delivery_counter t.instruments subscriber;
    };
  invalidate_quench t;
  journal_op t (Journal.Subscribe { id; subscriber; profile });
  Prim_sub id

let subscribe_text t ~subscriber src handler =
  match Lang.parse_profile ~name:subscriber t.schema src with
  | Error e -> Error e
  | Ok profile -> Ok (subscribe t ~subscriber ~profile handler)

let rec prims_of_expr = function
  | Composite.Prim p -> [ p ]
  | Composite.Seq (a, b, _) | Composite.Both (a, b, _)
  | Composite.Either (a, b) | Composite.Without (a, b, _) ->
    prims_of_expr a @ prims_of_expr b
  | Composite.Repeat (a, _, _) -> prims_of_expr a

let subscribe_composite t ~subscriber expr handler =
  match Composite.compile t.schema expr with
  | Error e -> Error e
  | Ok detector ->
    let id = t.next_comp in
    t.next_comp <- id + 1;
    Hashtbl.replace t.composites id
      {
        subscriber;
        detector;
        expr;
        prims = prims_of_expr expr;
        handler;
        c_delivered = delivery_counter t.instruments subscriber;
      };
    invalidate_quench t;
    journal_op t (Journal.Subscribe_composite { id; subscriber; expr });
    Ok (Comp_sub id)

let unsubscribe t = function
  | Prim_sub id ->
    let present = Engine.remove_profile t.engine id in
    if present then begin
      Hashtbl.remove t.handlers id;
      invalidate_quench t;
      journal_op t (Journal.Unsubscribe_prim { id })
    end;
    present
  | Comp_sub id ->
    let present = Hashtbl.mem t.composites id in
    if present then begin
      Hashtbl.remove t.composites id;
      invalidate_quench t;
      journal_op t (Journal.Unsubscribe_comp { id })
    end;
    present

let quench t =
  match t.quench with
  | Some q -> q
  | None ->
    (* Merge primitive subscriptions with the constituents of composite
       ones: quenching must not starve a composite detector. *)
    let merged = Profile_set.create t.schema in
    Profile_set.iter t.pset (fun _ p -> ignore (Profile_set.add merged p));
    Hashtbl.iter
      (fun _ c -> List.iter (fun p -> ignore (Profile_set.add merged p)) c.prims)
      t.composites;
    let q = Quench.build merged in
    t.quench <- Some q;
    (match t.instruments with
    | None -> ()
    | Some ins -> Metrics.Counter.incr ins.quench_rebuilds_total);
    q

let deliver_incr counter =
  match counter with None -> () | Some c -> Metrics.Counter.incr c

(* Every handler invocation passes through the supervisor: a raising
   handler is retried/dead-lettered under the broker's policy, so it
   can neither starve later subscribers nor desynchronize the
   published/notifications counters. Only accepted deliveries count. *)
let deliver_prim t event id sent =
  match Hashtbl.find_opt t.handlers id with
  | None -> ()
  | Some sub ->
    if
      Supervise.deliver t.super ?faults:t.faults
        ~subscriber:sub.p_subscriber ~handler:sub.p_handler
        (Notification.make ~event ~origin:(Notification.Primitive id)
           ~subscriber:sub.p_subscriber ())
    then begin
      incr sent;
      deliver_incr sub.p_delivered
    end

let feed_composites t event sent =
  Hashtbl.iter
    (fun cid c ->
      List.iter
        (fun (_ : Composite.occurrence) ->
          if
            Supervise.deliver t.super ?faults:t.faults
              ~subscriber:c.subscriber ~handler:c.handler
              (Notification.make ~event ~origin:(Notification.Composite cid)
                 ~subscriber:c.subscriber ())
          then begin
            incr sent;
            deliver_incr c.c_delivered
          end)
        (Composite.feed c.detector event))
    t.composites

(* A publish record carries the dead letters it caused: the journaled
   op must be self-contained, because replay cannot re-run the
   handlers that failed. *)
let journal_publish t ~events ~batch ~total_before =
  match t.journal with
  | None -> ()
  | Some _ ->
    let dlq = Supervise.deadletter t.super in
    let held = Deadletter.length dlq in
    let keep = Stdlib.min (Deadletter.total dlq - total_before) held in
    let skip = held - keep in
    let new_deadletters =
      List.filteri (fun i _ -> i >= skip) (Deadletter.entries dlq)
    in
    journal_op t
      (Journal.Publish
         {
           events;
           batch;
           published = t.published;
           notifications = t.notifications;
           ops = Engine.ops t.engine;
           supervise = Supervise.export t.super;
           new_deadletters;
           dlq_total = Deadletter.total dlq;
           dlq_dropped = Deadletter.dropped dlq;
         })

(* Attach the profiled matcher traversal of the event just matched to
   the active trace (requires a traced broker, whose engine records). *)
let attach_match_path t matched =
  match t.tracer with
  | None -> ()
  | Some tr -> (
    if Trace.active tr then
      match Engine.last_path t.engine with
      | [] -> ()
      | steps ->
        let arr f = Array.of_list (List.map f steps) in
        Trace.attach_path tr
          {
            Trace.path_nodes = arr (fun s -> s.Flat.step_node);
            path_levels = arr (fun s -> s.Flat.step_level);
            path_edges = arr (fun s -> s.Flat.step_edge);
            path_comparisons = arr (fun s -> s.Flat.step_comparisons);
            path_matched = Array.of_list matched;
          })

(* Wrap a publish entry point in a root trace; an injected crash
   escaping it dumps the flight recorder before propagating. *)
let with_publish_trace t ~name f =
  match t.tracer with
  | None -> f ()
  | Some tr -> (
    try Trace.with_trace tr ~name f
    with Fault.Crashed p as exn ->
      ignore
        (Trace.record_crash tr ~reason:("crashed: " ^ Fault.crash_point_name p));
      raise exn)

let publish_core t event =
  let total_before = Deadletter.total (Supervise.deadletter t.super) in
  t.published <- t.published + 1;
  let do_match () =
    match t.adaptive with
    | Some a -> Adaptive.match_event a event
    | None -> Engine.match_event t.engine event
  in
  let matched =
    (* Only pay for the span (and its allocated attrs) when this
       publish was actually sampled into an open trace. *)
    match t.tracer with
    | Some tr when Trace.active tr ->
      Trace.with_span tr ~name:"engine.match" (fun () ->
          let matched = do_match () in
          Trace.add_attr tr "matched" (string_of_int (List.length matched));
          attach_match_path t matched;
          matched)
    | Some _ | None -> do_match ()
  in
  let sent = ref 0 in
  List.iter (fun id -> deliver_prim t event id sent) matched;
  feed_composites t event sent;
  t.notifications <- t.notifications + !sent;
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.incr ins.published_total;
    Metrics.Counter.add ins.notifications_total !sent);
  journal_publish t ~events:[| event |] ~batch:false ~total_before;
  !sent

let publish t event =
  with_publish_trace t ~name:"broker.publish" (fun () -> publish_core t event)

let publish_batch_core ?pool t events =
  let total_before = Deadletter.total (Supervise.deadletter t.super) in
  let n = Array.length events in
  (* Matching fans out across the pool's domains; delivery stays on the
     calling domain, in batch order, because handlers are arbitrary
     user code and composite detection is stateful over the stream. *)
  let do_match () =
    match t.adaptive with
    | Some a -> Adaptive.match_batch ?pool a events
    | None -> Engine.match_batch ?pool t.engine events
  in
  let results =
    match t.tracer with
    | Some tr when Trace.active tr ->
      Trace.with_span tr ~name:"engine.match_batch" (fun () ->
          let results = do_match () in
          Trace.add_attr tr "events" (string_of_int n);
          results)
    | Some _ | None -> do_match ()
  in
  t.published <- t.published + n;
  let sent = ref 0 in
  Array.iteri
    (fun i matched ->
      let event = events.(i) in
      Array.iter (fun id -> deliver_prim t event id sent) matched;
      feed_composites t event sent)
    results;
  t.notifications <- t.notifications + !sent;
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.add ins.published_total n;
    Metrics.Counter.add ins.notifications_total !sent;
    Metrics.Histogram.observe ins.batch_size (float_of_int n);
    Metrics.Gauge.set ins.pool_workers
      (float_of_int (match pool with Some p -> Pool.domains p | None -> 1)));
  journal_publish t ~events ~batch:true ~total_before;
  !sent

let publish_batch ?pool t events =
  with_publish_trace t ~name:"broker.publish_batch" (fun () ->
      publish_batch_core ?pool t events)

let publish_quenched t event =
  if Quench.wanted_event (quench t) event then Some (publish t event)
  else begin
    (match t.instruments with
    | None -> ()
    | Some ins -> Metrics.Counter.incr ins.quench_suppressed_total);
    None
  end

let replay_deadletters t =
  let dlq = Supervise.deadletter t.super in
  let deliver (e : Deadletter.entry) =
    let n = e.Deadletter.notification in
    let target =
      match n.Notification.origin with
      | Notification.Primitive id ->
        Option.map
          (fun s -> (s.p_subscriber, s.p_handler, s.p_delivered))
          (Hashtbl.find_opt t.handlers id)
      | Notification.Composite id ->
        Option.map
          (fun c -> (c.subscriber, c.handler, c.c_delivered))
          (Hashtbl.find_opt t.composites id)
    in
    match target with
    | None ->
      (* The subscription is gone; keep the letter for the operator. *)
      Deadletter.push dlq e;
      false
    | Some (subscriber, handler, counter) ->
      if Supervise.deliver t.super ?faults:t.faults ~subscriber ~handler n
      then begin
        t.notifications <- t.notifications + 1;
        (match t.instruments with
        | None -> ()
        | Some ins -> Metrics.Counter.incr ins.notifications_total);
        deliver_incr counter;
        true
      end
      else false
  in
  let redelivered, failed = Deadletter.replay dlq ~deliver in
  journal_op t
    (Journal.Deadletter_replay
       {
         published = t.published;
         notifications = t.notifications;
         supervise = Supervise.export t.super;
         dlq_entries = Deadletter.entries dlq;
         dlq_total = Deadletter.total dlq;
         dlq_dropped = Deadletter.dropped dlq;
       });
  (redelivered, failed)

(* -- Recovery ------------------------------------------------------ *)

let set_published t n =
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.add ins.published_total (Stdlib.max 0 (n - t.published)));
  t.published <- n

let set_notifications t n =
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.add ins.notifications_total
      (Stdlib.max 0 (n - t.notifications)));
  t.notifications <- n

(* Replay one journaled operation onto a recovering broker. Matching
   decisions are re-executed (so the learned statistics and composite
   detector streams regrow exactly); counters and supervisor state are
   restored absolutely from the record. *)
let apply_op t resolve op =
  let ( let* ) = Result.bind in
  match op with
  | Journal.Subscribe { id; subscriber; profile } -> (
    match Engine.add_profile_with_id t.engine ~id profile with
    | () ->
      Hashtbl.replace t.handlers id
        {
          p_subscriber = subscriber;
          p_handler = resolve ~subscriber;
          p_delivered = delivery_counter t.instruments subscriber;
        };
      invalidate_quench t;
      Ok ()
    | exception Invalid_argument msg -> Error msg)
  | Journal.Subscribe_composite { id; subscriber; expr } -> (
    match Composite.compile t.schema expr with
    | Error e -> Error e
    | Ok detector ->
      Hashtbl.replace t.composites id
        {
          subscriber;
          detector;
          expr;
          prims = prims_of_expr expr;
          handler = resolve ~subscriber;
          c_delivered = delivery_counter t.instruments subscriber;
        };
      if id >= t.next_comp then t.next_comp <- id + 1;
      invalidate_quench t;
      Ok ())
  | Journal.Unsubscribe_prim { id } ->
    if Engine.remove_profile t.engine id then begin
      Hashtbl.remove t.handlers id;
      invalidate_quench t
    end;
    Ok ()
  | Journal.Unsubscribe_comp { id } ->
    if Hashtbl.mem t.composites id then begin
      Hashtbl.remove t.composites id;
      invalidate_quench t
    end;
    Ok ()
  | Journal.Publish
      {
        events;
        batch;
        published;
        notifications;
        ops;
        supervise;
        new_deadletters;
        dlq_total;
        dlq_dropped;
      } ->
    Array.iter (fun ev -> Engine.replay_observe t.engine ev) events;
    (match t.adaptive with
    | None -> ()
    | Some a ->
      (* Same cadence as the live path: one tick per event for single
         publishes, one tick for the whole array for batches. *)
      if batch then Adaptive.note_events a (Array.length events)
      else Array.iter (fun _ -> Adaptive.note_events a 1) events);
    Array.iter
      (fun ev ->
        Hashtbl.iter
          (fun _ c -> ignore (Composite.feed c.detector ev))
          t.composites)
      events;
    set_published t published;
    set_notifications t notifications;
    Engine.restore_ops t.engine ops;
    let dlq = Supervise.deadletter t.super in
    List.iter (Deadletter.push dlq) new_deadletters;
    Deadletter.force_counters dlq ~total:dlq_total ~dropped:dlq_dropped;
    let* () = Supervise.import t.super supervise in
    Ok ()
  | Journal.Deadletter_replay
      { published; notifications; supervise; dlq_entries; dlq_total; dlq_dropped }
    ->
    set_published t published;
    set_notifications t notifications;
    Deadletter.restore
      (Supervise.deadletter t.super)
      dlq_entries ~total:dlq_total ~dropped:dlq_dropped;
    let* () = Supervise.import t.super supervise in
    Ok ()

let recover ?spec ?adaptive ?metrics ?retry ?faults ?deadletter_capacity
    ?tracer ?aggregate ?delta_cap
    ?(handlers = fun ~subscriber:_ -> fun (_ : Notification.t) -> ())
    ~journal:cfg schema =
  let ( let* ) = Result.bind in
  let* recovered, j = Journal.recover ?metrics schema cfg in
  let pset = Profile_set.create schema in
  (* Profiles go in before the engine is created: the engine's first
     tree is then built from the restored set, and the stats imported
     below are not wiped by a staleness refresh. *)
  let* () =
    match recovered.Journal.snapshot with
    | None -> Ok ()
    | Some snap -> (
      match
        List.iter
          (fun (id, _, p) -> Profile_set.add_with_id pset ~id p)
          snap.Snapshot.profiles
      with
      | () ->
        Profile_set.reserve_ids pset snap.Snapshot.next_profile_id;
        Ok ()
      | exception Invalid_argument msg -> Error msg)
  in
  let engine = Engine.create ?spec ?metrics ?aggregate ?delta_cap pset in
  (match tracer with
  | Some tr when Genas_obs.Trace.sample_rate tr > 0.0 ->
    Engine.set_profiling engine true
  | _ -> ());
  let adaptive =
    Option.map (fun policy -> Adaptive.create ~policy ?metrics engine) adaptive
  in
  let t =
    {
      schema;
      pset;
      engine;
      adaptive;
      handlers = Hashtbl.create 64;
      composites = Hashtbl.create 8;
      next_comp = 0;
      quench = None;
      published = 0;
      notifications = 0;
      super =
        Supervise.create ?policy:retry ?deadletter_capacity ?metrics ?tracer
          ~prefix:"genas_broker" ();
      faults;
      (* Attached after replay, so replaying never re-journals. *)
      journal = None;
      tracer;
      instruments = Option.map make_instruments metrics;
    }
  in
  let resolve = handlers in
  let* () =
    match recovered.Journal.snapshot with
    | None -> Ok ()
    | Some snap ->
      List.iter
        (fun (id, subscriber, _) ->
          Hashtbl.replace t.handlers id
            {
              p_subscriber = subscriber;
              p_handler = resolve ~subscriber;
              p_delivered = delivery_counter t.instruments subscriber;
            })
        snap.Snapshot.profiles;
      let* () = Stats.import (Engine.stats engine) snap.Snapshot.stats in
      Engine.restore_ops engine snap.Snapshot.ops;
      let* () =
        match (adaptive, snap.Snapshot.adaptive) with
        | Some a, Some e -> Adaptive.import a e
        | _ -> Ok ()
      in
      let* () =
        List.fold_left
          (fun acc (id, subscriber, expr) ->
            let* () = acc in
            match Composite.compile t.schema expr with
            | Error e -> Error e
            | Ok detector ->
              Hashtbl.replace t.composites id
                {
                  subscriber;
                  detector;
                  expr;
                  prims = prims_of_expr expr;
                  handler = resolve ~subscriber;
                  c_delivered = delivery_counter t.instruments subscriber;
                };
              Ok ())
          (Ok ()) snap.Snapshot.composites
      in
      t.next_comp <- Stdlib.max t.next_comp snap.Snapshot.next_comp;
      set_published t snap.Snapshot.published;
      set_notifications t snap.Snapshot.notifications;
      Deadletter.restore
        (Supervise.deadletter t.super)
        snap.Snapshot.dlq_entries ~total:snap.Snapshot.dlq_total
        ~dropped:snap.Snapshot.dlq_dropped;
      Supervise.import t.super snap.Snapshot.supervise
  in
  let* () =
    List.fold_left
      (fun acc op ->
        let* () = acc in
        apply_op t resolve op)
      (Ok ()) recovered.Journal.tail
  in
  Ok { t with journal = Some j }

let close t = match t.journal with None -> () | Some j -> Journal.close j

let ops t = Engine.ops t.engine

let supervisor t = t.super

let deadletter t = Supervise.deadletter t.super

let faults t = t.faults

let published t = t.published

let notifications t = t.notifications

let subscription_count t = Profile_set.size t.pset + Hashtbl.length t.composites

let subscriptions t =
  let prims =
    Hashtbl.fold
      (fun id s acc -> (Prim_sub id, s.p_subscriber) :: acc)
      t.handlers []
  in
  let comps =
    Hashtbl.fold
      (fun id c acc -> (Comp_sub id, c.subscriber) :: acc)
      t.composites []
  in
  List.sort Stdlib.compare (prims @ comps)

let engine t = t.engine

let rebuilds t =
  match t.adaptive with Some a -> Adaptive.rebuilds a | None -> 0

let tracer t = t.tracer

let dump_flight_recorder t = Option.map Trace.dump t.tracer
