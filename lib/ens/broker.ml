module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Lang = Genas_profile.Lang
module Engine = Genas_core.Engine
module Adaptive = Genas_core.Adaptive
module Ops = Genas_filter.Ops
module Pool = Genas_filter.Pool
module Metrics = Genas_obs.Metrics

type sub_id = Prim_sub of int | Comp_sub of int

type prim_sub = {
  p_subscriber : string;
  p_handler : Notification.handler;
  p_delivered : Metrics.counter option;
}

type comp_sub = {
  subscriber : string;
  detector : Composite.t;
  prims : Profile.t list;  (** constituents, for the quench table *)
  handler : Notification.handler;
  c_delivered : Metrics.counter option;
}

type instruments = {
  registry : Metrics.t;  (** for per-subscriber delivery counters *)
  published_total : Metrics.counter;
  notifications_total : Metrics.counter;
  quench_invalidations_total : Metrics.counter;
  quench_rebuilds_total : Metrics.counter;
  quench_suppressed_total : Metrics.counter;
  batch_size : Metrics.histogram;
  pool_workers : Metrics.gauge;
}

let make_instruments registry =
  {
    registry;
    published_total =
      Metrics.counter registry "genas_broker_published_total"
        ~help:"Events accepted by Broker.publish";
    notifications_total =
      Metrics.counter registry "genas_broker_notifications_total"
        ~help:"Notifications delivered to subscribers";
    quench_invalidations_total =
      Metrics.counter registry "genas_broker_quench_invalidations_total"
        ~help:"Quench-cache invalidations (subscription changes)";
    quench_rebuilds_total =
      Metrics.counter registry "genas_broker_quench_rebuilds_total"
        ~help:"Quench-table rebuilds after an invalidation";
    quench_suppressed_total =
      Metrics.counter registry "genas_broker_quench_suppressed_total"
        ~help:"Events suppressed by publish_quenched";
    batch_size =
      Metrics.histogram registry "genas_broker_batch_size"
        ~help:"Events per publish_batch call"
        ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.;
                    4096.; 16384.; 65536. |];
    pool_workers =
      Metrics.gauge registry "genas_broker_pool_workers"
        ~help:"Domains of the pool used by the most recent publish_batch \
               (1 = sequential)";
  }

let delivery_counter instruments subscriber =
  match instruments with
  | None -> None
  | Some ins ->
    Some
      (Metrics.counter ins.registry "genas_broker_deliveries_total"
         ~help:"Notifications delivered, per subscriber"
         ~labels:[ ("subscriber", subscriber) ])

type t = {
  schema : Schema.t;
  pset : Profile_set.t;
  engine : Engine.t;
  adaptive : Adaptive.t option;
  handlers : (int, prim_sub) Hashtbl.t;
      (** primitive subscriptions, by profile id *)
  composites : (int, comp_sub) Hashtbl.t;
  mutable next_comp : int;
  mutable quench : Quench.t option;  (** cache; [None] = stale *)
  mutable published : int;
  mutable notifications : int;
  super : Supervise.t;
  faults : Fault.t option;
  instruments : instruments option;
}

let create ?spec ?adaptive ?metrics ?retry ?faults ?deadletter_capacity schema =
  let pset = Profile_set.create schema in
  let engine = Engine.create ?spec ?metrics pset in
  let adaptive =
    Option.map (fun policy -> Adaptive.create ~policy ?metrics engine) adaptive
  in
  {
    schema;
    pset;
    engine;
    adaptive;
    handlers = Hashtbl.create 64;
    composites = Hashtbl.create 8;
    next_comp = 0;
    quench = None;
    published = 0;
    notifications = 0;
    super =
      Supervise.create ?policy:retry ?deadletter_capacity ?metrics
        ~prefix:"genas_broker" ();
    faults;
    instruments = Option.map make_instruments metrics;
  }

let schema t = t.schema

let invalidate_quench t =
  (* A no-op on an already-stale cache: repeated unsubscribes of the
     same id must count (and pay for) at most one invalidation. *)
  if t.quench <> None then begin
    t.quench <- None;
    match t.instruments with
    | None -> ()
    | Some ins -> Metrics.Counter.incr ins.quench_invalidations_total
  end

let subscribe t ~subscriber ~profile handler =
  let id = Profile_set.add t.pset profile in
  Hashtbl.replace t.handlers id
    {
      p_subscriber = subscriber;
      p_handler = handler;
      p_delivered = delivery_counter t.instruments subscriber;
    };
  invalidate_quench t;
  Prim_sub id

let subscribe_text t ~subscriber src handler =
  match Lang.parse_profile ~name:subscriber t.schema src with
  | Error e -> Error e
  | Ok profile -> Ok (subscribe t ~subscriber ~profile handler)

let rec prims_of_expr = function
  | Composite.Prim p -> [ p ]
  | Composite.Seq (a, b, _) | Composite.Both (a, b, _)
  | Composite.Either (a, b) | Composite.Without (a, b, _) ->
    prims_of_expr a @ prims_of_expr b
  | Composite.Repeat (a, _, _) -> prims_of_expr a

let subscribe_composite t ~subscriber expr handler =
  match Composite.compile t.schema expr with
  | Error e -> Error e
  | Ok detector ->
    let id = t.next_comp in
    t.next_comp <- id + 1;
    Hashtbl.replace t.composites id
      {
        subscriber;
        detector;
        prims = prims_of_expr expr;
        handler;
        c_delivered = delivery_counter t.instruments subscriber;
      };
    invalidate_quench t;
    Ok (Comp_sub id)

let unsubscribe t = function
  | Prim_sub id ->
    let present = Profile_set.remove t.pset id in
    if present then begin
      Hashtbl.remove t.handlers id;
      invalidate_quench t
    end;
    present
  | Comp_sub id ->
    let present = Hashtbl.mem t.composites id in
    if present then begin
      Hashtbl.remove t.composites id;
      invalidate_quench t
    end;
    present

let quench t =
  match t.quench with
  | Some q -> q
  | None ->
    (* Merge primitive subscriptions with the constituents of composite
       ones: quenching must not starve a composite detector. *)
    let merged = Profile_set.create t.schema in
    Profile_set.iter t.pset (fun _ p -> ignore (Profile_set.add merged p));
    Hashtbl.iter
      (fun _ c -> List.iter (fun p -> ignore (Profile_set.add merged p)) c.prims)
      t.composites;
    let q = Quench.build merged in
    t.quench <- Some q;
    (match t.instruments with
    | None -> ()
    | Some ins -> Metrics.Counter.incr ins.quench_rebuilds_total);
    q

let deliver_incr counter =
  match counter with None -> () | Some c -> Metrics.Counter.incr c

(* Every handler invocation passes through the supervisor: a raising
   handler is retried/dead-lettered under the broker's policy, so it
   can neither starve later subscribers nor desynchronize the
   published/notifications counters. Only accepted deliveries count. *)
let deliver_prim t event id sent =
  match Hashtbl.find_opt t.handlers id with
  | None -> ()
  | Some sub ->
    if
      Supervise.deliver t.super ?faults:t.faults
        ~subscriber:sub.p_subscriber ~handler:sub.p_handler
        (Notification.make ~event ~origin:(Notification.Primitive id)
           ~subscriber:sub.p_subscriber ())
    then begin
      incr sent;
      deliver_incr sub.p_delivered
    end

let feed_composites t event sent =
  Hashtbl.iter
    (fun cid c ->
      List.iter
        (fun (_ : Composite.occurrence) ->
          if
            Supervise.deliver t.super ?faults:t.faults
              ~subscriber:c.subscriber ~handler:c.handler
              (Notification.make ~event ~origin:(Notification.Composite cid)
                 ~subscriber:c.subscriber ())
          then begin
            incr sent;
            deliver_incr c.c_delivered
          end)
        (Composite.feed c.detector event))
    t.composites

let publish t event =
  t.published <- t.published + 1;
  let matched =
    match t.adaptive with
    | Some a -> Adaptive.match_event a event
    | None -> Engine.match_event t.engine event
  in
  let sent = ref 0 in
  List.iter (fun id -> deliver_prim t event id sent) matched;
  feed_composites t event sent;
  t.notifications <- t.notifications + !sent;
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.incr ins.published_total;
    Metrics.Counter.add ins.notifications_total !sent);
  !sent

let publish_batch ?pool t events =
  let n = Array.length events in
  (* Matching fans out across the pool's domains; delivery stays on the
     calling domain, in batch order, because handlers are arbitrary
     user code and composite detection is stateful over the stream. *)
  let results =
    match t.adaptive with
    | Some a -> Adaptive.match_batch ?pool a events
    | None -> Engine.match_batch ?pool t.engine events
  in
  t.published <- t.published + n;
  let sent = ref 0 in
  Array.iteri
    (fun i matched ->
      let event = events.(i) in
      Array.iter (fun id -> deliver_prim t event id sent) matched;
      feed_composites t event sent)
    results;
  t.notifications <- t.notifications + !sent;
  (match t.instruments with
  | None -> ()
  | Some ins ->
    Metrics.Counter.add ins.published_total n;
    Metrics.Counter.add ins.notifications_total !sent;
    Metrics.Histogram.observe ins.batch_size (float_of_int n);
    Metrics.Gauge.set ins.pool_workers
      (float_of_int (match pool with Some p -> Pool.domains p | None -> 1)));
  !sent

let publish_quenched t event =
  if Quench.wanted_event (quench t) event then Some (publish t event)
  else begin
    (match t.instruments with
    | None -> ()
    | Some ins -> Metrics.Counter.incr ins.quench_suppressed_total);
    None
  end

let ops t = Engine.ops t.engine

let supervisor t = t.super

let deadletter t = Supervise.deadletter t.super

let faults t = t.faults

let published t = t.published

let notifications t = t.notifications

let subscription_count t = Profile_set.size t.pset + Hashtbl.length t.composites

let engine t = t.engine

let rebuilds t =
  match t.adaptive with Some a -> Adaptive.rebuilds a | None -> 0
