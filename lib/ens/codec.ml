(* Seeded-deterministic binary codec for the write-ahead journal and
   snapshots. Little-endian throughout; every frame is length-prefixed
   and carries a seeded FNV-1a 64 checksum of its payload, so a torn or
   bit-flipped tail is detected (and truncated) rather than decoded. *)

module Value = Genas_model.Value
module Event = Genas_model.Event
module Schema = Genas_model.Schema
module Profile = Genas_profile.Profile
module Lang = Genas_profile.Lang
module Estimator = Genas_dist.Estimator
module Stats = Genas_core.Stats
module Adaptive = Genas_core.Adaptive
module Ops = Genas_filter.Ops

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* {1 Checksum} *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let checksum ~seed s =
  let h = ref (Int64.logxor fnv_offset (Int64.of_int seed)) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* {1 Primitive writers (into a Buffer)} *)

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let w_i64 b n = Buffer.add_int64_le b n
let w_int b n = w_i64 b (Int64.of_int n)
let w_bool b v = w_u8 b (if v then 1 else 0)
let w_float b f = w_i64 b (Int64.bits_of_float f)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_option w b = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    w b v

let w_list w b xs =
  w_int b (List.length xs);
  List.iter (w b) xs

let w_array w b xs =
  w_int b (Array.length xs);
  Array.iter (w b) xs

(* {1 Primitive readers (over a string)} *)

type reader = { buf : string; mutable pos : int }

let reader ?(pos = 0) buf = { buf; pos }

let need r n =
  if n < 0 || r.pos + n > String.length r.buf then corrupt "truncated payload"

let r_u8 r =
  need r 1;
  let c = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_i64 r =
  need r 8;
  let v = String.get_int64_le r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r = Int64.to_int (r_i64 r)

let r_bool r = r_u8 r <> 0
let r_float r = Int64.float_of_bits (r_i64 r)

let r_string r =
  let n = r_int r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_option rd r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (rd r)
  | t -> corrupt "bad option tag %d" t

let r_list rd r =
  let n = r_int r in
  if n < 0 then corrupt "negative list length";
  List.init n (fun _ -> rd r)

let r_array rd r =
  let n = r_int r in
  if n < 0 then corrupt "negative array length";
  Array.init n (fun _ -> rd r)

let r_end r =
  if r.pos <> String.length r.buf then corrupt "trailing bytes in payload"

(* {1 Frames}

   A frame is [u32 LE payload-length | i64 LE checksum | payload]. *)

let frame_header_len = 12

(* A frame's length prefix is attacker-controlled on a socket (and
   bit-rot-controlled on disk): it must be bounds-checked *before* any
   allocation is sized from it. 16 MiB comfortably holds every record
   the codec produces while keeping a hostile header from demanding a
   multi-GiB buffer. *)
let default_max_frame = 1 lsl 24

let frame ~seed payload =
  if String.length payload > 0x7fff_ffff then
    invalid_arg "Codec.frame: payload exceeds the u32 length prefix";
  let b = Buffer.create (String.length payload + frame_header_len) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  w_i64 b (checksum ~seed payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Decode a header's length field defensively: [Error] rather than
   trusting a negative or oversized value. *)
let frame_length ~max_frame header ~pos =
  let plen = Int32.to_int (String.get_int32_le header pos) in
  if plen < 0 then Error (Printf.sprintf "negative frame length %d" plen)
  else if plen > max_frame then
    Error
      (Printf.sprintf "frame length %d exceeds the %d-byte limit" plen
         max_frame)
  else Ok plen

(* Parse consecutive frames from [buf] starting at [pos]; stops at the
   first torn or corrupt frame. Returns the payloads, the byte offset
   of the valid prefix's end, and whether bytes were left over (a
   truncation-worthy tail). *)
let parse_frames ?(max_frame = default_max_frame) ~seed buf ~pos =
  let len = String.length buf in
  let payloads = ref [] in
  let ok_end = ref pos in
  let cursor = ref pos in
  let stop = ref false in
  while not !stop do
    if !cursor + frame_header_len > len then stop := true
    else begin
      match frame_length ~max_frame buf ~pos:!cursor with
      | Error _ -> stop := true
      | Ok plen ->
        let sum = String.get_int64_le buf (!cursor + 4) in
        if !cursor + frame_header_len + plen > len then stop := true
        else begin
          let payload = String.sub buf (!cursor + frame_header_len) plen in
          if Int64.equal (checksum ~seed payload) sum then begin
            payloads := payload :: !payloads;
            cursor := !cursor + frame_header_len + plen;
            ok_end := !cursor
          end
          else stop := true
        end
    end
  done;
  (List.rev !payloads, !ok_end, !ok_end < len)

(* Streaming frame reader for sockets. The header is read first and its
   length field validated against [max_frame] {e before} the payload
   buffer is allocated, so a corrupt or hostile peer cannot force a
   negative or multi-GiB allocation. *)
let read_frame ?(max_frame = default_max_frame) ~seed ic =
  let header = Bytes.create frame_header_len in
  match really_input ic header 0 frame_header_len with
  | exception End_of_file -> Error `Eof
  | exception Sys_error _ -> Error `Eof
  | () -> (
    let header = Bytes.unsafe_to_string header in
    match frame_length ~max_frame header ~pos:0 with
    | Error msg -> Error (`Corrupt msg)
    | Ok plen -> (
      let sum = String.get_int64_le header 4 in
      let payload = Bytes.create plen in
      match really_input ic payload 0 plen with
      | exception End_of_file -> Error (`Corrupt "truncated frame payload")
      | exception Sys_error _ -> Error (`Corrupt "truncated frame payload")
      | () ->
        let payload = Bytes.unsafe_to_string payload in
        if Int64.equal (checksum ~seed payload) sum then Ok payload
        else Error (`Corrupt "frame checksum mismatch")))

(* {1 Domain encodings} *)

let w_value b = function
  | Value.Int n ->
    w_u8 b 0;
    w_int b n
  | Value.Float f ->
    w_u8 b 1;
    w_float b f
  | Value.Str s ->
    w_u8 b 2;
    w_string b s
  | Value.Bool v ->
    w_u8 b 3;
    w_bool b v

let r_value r =
  match r_u8 r with
  | 0 -> Value.Int (r_int r)
  | 1 -> Value.Float (r_float r)
  | 2 -> Value.Str (r_string r)
  | 3 -> Value.Bool (r_bool r)
  | t -> corrupt "bad value tag %d" t

let w_event b (e : Event.t) =
  w_int b e.Event.seq;
  w_float b e.Event.time;
  w_array w_value b e.Event.values

let r_event schema r =
  let seq = r_int r in
  let time = r_float r in
  let values = r_array r_value r in
  match Event.of_values ~seq ~time schema values with
  | Ok e -> e
  | Error msg -> corrupt "event: %s" msg

let w_origin b = function
  | Notification.Primitive id ->
    w_u8 b 0;
    w_int b id
  | Notification.Composite id ->
    w_u8 b 1;
    w_int b id

let r_origin r =
  match r_u8 r with
  | 0 -> Notification.Primitive (r_int r)
  | 1 -> Notification.Composite (r_int r)
  | t -> corrupt "bad origin tag %d" t

let w_notification b (n : Notification.t) =
  w_event b n.Notification.event;
  w_origin b n.Notification.origin;
  w_string b n.Notification.subscriber;
  w_option w_int b n.Notification.broker

let r_notification schema r =
  let event = r_event schema r in
  let origin = r_origin r in
  let subscriber = r_string r in
  let broker = r_option r_int r in
  Notification.make ?broker ~event ~origin ~subscriber ()

let w_deadletter b (e : Deadletter.entry) =
  w_notification b e.Deadletter.notification;
  w_int b e.Deadletter.attempts;
  w_string b e.Deadletter.error;
  w_int b e.Deadletter.seq

let r_deadletter schema r =
  let notification = r_notification schema r in
  let attempts = r_int r in
  let error = r_string r in
  let seq = r_int r in
  { Deadletter.notification; attempts; error; seq }

(* Profiles travel as their profile-language body — [Lang.body_to_string]
   re-parses to an equivalent profile (the persistence contract shared
   with {!Store}). *)

let w_profile schema b (p : Profile.t) =
  w_option w_string b p.Profile.name;
  w_string b (Lang.body_to_string schema p)

let r_profile schema r =
  let name = r_option r_string r in
  let body = r_string r in
  match Lang.parse_profile ?name schema body with
  | Ok p -> p
  | Error msg -> corrupt "profile: %s" msg

let rec w_expr schema b = function
  | Composite.Prim p ->
    w_u8 b 0;
    w_profile schema b p
  | Composite.Seq (a, c, w) ->
    w_u8 b 1;
    w_expr schema b a;
    w_expr schema b c;
    w_float b w
  | Composite.Both (a, c, w) ->
    w_u8 b 2;
    w_expr schema b a;
    w_expr schema b c;
    w_float b w
  | Composite.Either (a, c) ->
    w_u8 b 3;
    w_expr schema b a;
    w_expr schema b c
  | Composite.Without (a, c, w) ->
    w_u8 b 4;
    w_expr schema b a;
    w_expr schema b c;
    w_float b w
  | Composite.Repeat (a, k, w) ->
    w_u8 b 5;
    w_expr schema b a;
    w_int b k;
    w_float b w

let rec r_expr schema r =
  match r_u8 r with
  | 0 -> Composite.Prim (r_profile schema r)
  | 1 ->
    let a = r_expr schema r in
    let c = r_expr schema r in
    let w = r_float r in
    Composite.Seq (a, c, w)
  | 2 ->
    let a = r_expr schema r in
    let c = r_expr schema r in
    let w = r_float r in
    Composite.Both (a, c, w)
  | 3 ->
    let a = r_expr schema r in
    let c = r_expr schema r in
    Composite.Either (a, c)
  | 4 ->
    let a = r_expr schema r in
    let c = r_expr schema r in
    let w = r_float r in
    Composite.Without (a, c, w)
  | 5 ->
    let a = r_expr schema r in
    let k = r_int r in
    let w = r_float r in
    Composite.Repeat (a, k, w)
  | t -> corrupt "bad composite tag %d" t

let w_ops b (o : Ops.t) =
  w_int b o.Ops.comparisons;
  w_int b o.Ops.node_visits;
  w_int b o.Ops.events;
  w_int b o.Ops.matches

let r_ops r =
  let comparisons = r_int r in
  let node_visits = r_int r in
  let events = r_int r in
  let matches = r_int r in
  { Ops.comparisons; node_visits; events; matches }

let w_estimator b (e : Estimator.Export.t) =
  w_bool b e.Estimator.Export.exact;
  w_int b e.Estimator.Export.bins;
  w_array w_float b e.Estimator.Export.counts;
  w_int b e.Estimator.Export.total;
  w_int b e.Estimator.Export.dropped

let r_estimator r =
  let exact = r_bool r in
  let bins = r_int r in
  let counts = r_array r_float r in
  let total = r_int r in
  let dropped = r_int r in
  { Estimator.Export.exact; bins; counts; total; dropped }

let w_stats b (e : Stats.Export.t) =
  w_array w_estimator b e.Stats.Export.hists;
  w_int b e.Stats.Export.events_seen;
  w_list
    (fun b (id, w) ->
      w_int b id;
      w_float b w)
    b e.Stats.Export.priorities

let r_stats r =
  let hists = r_array r_estimator r in
  let events_seen = r_int r in
  let priorities =
    r_list
      (fun r ->
        let id = r_int r in
        let w = r_float r in
        (id, w))
      r
  in
  { Stats.Export.hists; events_seen; priorities }

let w_adaptive b (e : Adaptive.Export.t) =
  w_int b e.Adaptive.Export.seen;
  w_int b e.Adaptive.Export.since_check;
  w_int b e.Adaptive.Export.checks;
  w_int b e.Adaptive.Export.rebuilds;
  w_float b e.Adaptive.Export.last_drift;
  w_option (w_array w_estimator) b e.Adaptive.Export.planned

let r_adaptive r =
  let seen = r_int r in
  let since_check = r_int r in
  let checks = r_int r in
  let rebuilds = r_int r in
  let last_drift = r_float r in
  let planned = r_option (r_array r_estimator) r in
  { Adaptive.Export.seen; since_check; checks; rebuilds; last_drift; planned }

let w_circuit_state b = function
  | Supervise.Closed -> w_u8 b 0
  | Supervise.Open -> w_u8 b 1
  | Supervise.Half_open -> w_u8 b 2

let r_circuit_state r =
  match r_u8 r with
  | 0 -> Supervise.Closed
  | 1 -> Supervise.Open
  | 2 -> Supervise.Half_open
  | t -> corrupt "bad circuit-state tag %d" t

let w_supervise b (e : Supervise.Export.t) =
  w_int b e.Supervise.Export.deliveries;
  w_int b e.Supervise.Export.delivered;
  w_int b e.Supervise.Export.failures;
  w_int b e.Supervise.Export.retries;
  w_int b e.Supervise.Export.deadlettered;
  w_int b e.Supervise.Export.short_circuited;
  w_int b e.Supervise.Export.trips;
  w_int b e.Supervise.Export.jitter_draws;
  w_list
    (fun b (s, state, count) ->
      w_string b s;
      w_circuit_state b state;
      w_int b count)
    b e.Supervise.Export.circuits

let r_supervise r =
  let deliveries = r_int r in
  let delivered = r_int r in
  let failures = r_int r in
  let retries = r_int r in
  let deadlettered = r_int r in
  let short_circuited = r_int r in
  let trips = r_int r in
  let jitter_draws = r_int r in
  let circuits =
    r_list
      (fun r ->
        let s = r_string r in
        let state = r_circuit_state r in
        let count = r_int r in
        (s, state, count))
      r
  in
  {
    Supervise.Export.deliveries;
    delivered;
    failures;
    retries;
    deadlettered;
    short_circuited;
    trips;
    jitter_draws;
    circuits;
  }

(* A schema fingerprint pins a journal directory to the schema it was
   written against; recovery under a different schema must fail loudly,
   not decode garbage. *)
let schema_fingerprint schema = Format.asprintf "%a" Schema.pp schema
