module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Profile_set = Genas_profile.Profile_set
module Lattice = Genas_profile.Lattice
module Engine = Genas_core.Engine
module Metrics = Genas_obs.Metrics
module Trace = Genas_obs.Trace

type instruments = {
  sub_messages_total : Metrics.counter;
  unsub_messages_total : Metrics.counter;
  event_messages_total : Metrics.counter;
  publishes_total : Metrics.counter;
  notifications_total : Metrics.counter;
  link_drops_total : Metrics.counter;
  link_duplicates_total : Metrics.counter;
  link_delays_total : Metrics.counter;
  broker_pauses_total : Metrics.counter;
}

let make_instruments registry =
  {
    sub_messages_total =
      Metrics.counter registry "genas_router_sub_messages_total"
        ~help:"Inter-broker subscription-propagation messages";
    unsub_messages_total =
      Metrics.counter registry "genas_router_unsub_messages_total"
        ~help:"Inter-broker subscription-retraction messages";
    event_messages_total =
      Metrics.counter registry "genas_router_event_messages_total"
        ~help:"Inter-broker event forwards (hops)";
    publishes_total =
      Metrics.counter registry "genas_router_publishes_total"
        ~help:"Events injected via Router.publish";
    notifications_total =
      Metrics.counter registry "genas_router_notifications_total"
        ~help:"Notifications delivered network-wide";
    link_drops_total =
      Metrics.counter registry "genas_router_link_drops_total"
        ~help:"Event forwards lost to injected link faults";
    link_duplicates_total =
      Metrics.counter registry "genas_router_link_duplicates_total"
        ~help:"Event forwards duplicated by injected link faults";
    link_delays_total =
      Metrics.counter registry "genas_router_link_delays_total"
        ~help:"Event forwards delayed by injected link faults";
    broker_pauses_total =
      Metrics.counter registry "genas_router_broker_pauses_total"
        ~help:"Event arrivals deferred by injected broker pauses";
  }

type node_id = int

type dest = Local of string * Notification.handler | Link of node_id

type node = {
  id : node_id;
  neighbors : node_id list;
  pset : Profile_set.t;
  engine : Engine.t;
  dests : (int, dest) Hashtbl.t;  (** interest profile id → destination *)
  forwarded : (node_id, Lattice.t) Hashtbl.t;
      (** per outgoing link: covering lattice over the profiles already
          forwarded there — the covered-check that gates propagation is
          a root scan instead of a rescan of every forwarded entry *)
}

type sub_handle = int

type live_sub = {
  at : node_id;
  subscriber : string;
  profile : Profile.t;
  handler : Notification.handler;
}

type t = {
  schema : Schema.t;
  spec : Genas_core.Reorder.spec option;
  nodes : node array;
  live : (sub_handle, live_sub) Hashtbl.t;
  mutable next_handle : int;
  mutable next_fwd : int;  (** fresh ids for forwarded-table entries *)
  mutable sub_msgs : int;
  mutable unsub_msgs : int;
  mutable event_msgs : int;
  mutable notifications : int;
  mutable link_drops : int;
  mutable link_duplicates : int;
  mutable link_delays : int;
  mutable broker_pauses : int;
  super : Supervise.t;
  faults : Fault.t option;
  instruments : instruments option;
  tracer : Trace.t option;
}

let count_incr t pick =
  match t.instruments with
  | None -> ()
  | Some ins -> Metrics.Counter.incr (pick ins)

let count_add t pick n =
  match t.instruments with
  | None -> ()
  | Some ins -> Metrics.Counter.add (pick ins) n

let validate_tree ~nodes ~edges =
  if nodes <= 0 then Error "need at least one broker"
  else if List.length edges <> nodes - 1 then
    Error "a tree over n brokers needs exactly n-1 links"
  else begin
    let adj = Array.make nodes [] in
    let bad = ref None in
    List.iter
      (fun (a, b) ->
        if a < 0 || a >= nodes || b < 0 || b >= nodes || a = b then
          bad := Some "link endpoint out of range"
        else begin
          adj.(a) <- b :: adj.(a);
          adj.(b) <- a :: adj.(b)
        end)
      edges;
    match !bad with
    | Some e -> Error e
    | None ->
      (* n-1 edges + connectivity = tree. *)
      let seen = Array.make nodes false in
      let rec bfs = function
        | [] -> ()
        | x :: rest ->
          if seen.(x) then bfs rest
          else begin
            seen.(x) <- true;
            bfs (adj.(x) @ rest)
          end
      in
      bfs [ 0 ];
      if Array.for_all Fun.id seen then Ok adj
      else Error "broker topology is not connected"
  end

let make_nodes ?spec ?aggregate schema adj =
  Array.init (Array.length adj) (fun id ->
      let pset = Profile_set.create schema in
      {
        id;
        neighbors = adj.(id);
        pset;
        engine = Engine.create ?spec ?aggregate pset;
        dests = Hashtbl.create 32;
        forwarded = Hashtbl.create 4;
      })

let create ?spec ?metrics ?retry ?faults ?deadletter_capacity ?tracer
    ?aggregate schema ~nodes ~edges =
  match validate_tree ~nodes ~edges with
  | Error e -> Error e
  | Ok adj ->
    let nodes = make_nodes ?spec ?aggregate schema adj in
    (match tracer with
    | Some tr when Trace.sample_rate tr > 0.0 ->
      Array.iter (fun n -> Engine.set_profiling n.engine true) nodes
    | _ -> ());
    Ok
      {
        schema;
        spec;
        nodes;
        live = Hashtbl.create 32;
        next_handle = 0;
        next_fwd = 0;
        sub_msgs = 0;
        unsub_msgs = 0;
        event_msgs = 0;
        notifications = 0;
        link_drops = 0;
        link_duplicates = 0;
        link_delays = 0;
        broker_pauses = 0;
        super =
          Supervise.create ?policy:retry ?deadletter_capacity ?metrics ?tracer
            ~prefix:"genas_router" ();
        faults;
        instruments = Option.map make_instruments metrics;
        tracer;
      }

let create_exn ?spec ?metrics ?retry ?faults ?deadletter_capacity ?tracer
    ?aggregate schema ~nodes ~edges =
  match
    create ?spec ?metrics ?retry ?faults ?deadletter_capacity ?tracer
      ?aggregate schema ~nodes ~edges
  with
  | Ok t -> t
  | Error msg -> invalid_arg ("Router.create: " ^ msg)

let line ?spec ?metrics ?retry ?faults ?deadletter_capacity ?tracer ?aggregate
    schema ~nodes =
  create_exn ?spec ?metrics ?retry ?faults ?deadletter_capacity ?tracer
    ?aggregate schema ~nodes
    ~edges:(List.init (nodes - 1) (fun i -> (i, i + 1)))

let star ?spec ?metrics ?retry ?faults ?deadletter_capacity ?tracer ?aggregate
    schema ~leaves =
  create_exn ?spec ?metrics ?retry ?faults ?deadletter_capacity ?tracer
    ?aggregate schema
    ~nodes:(leaves + 1)
    ~edges:(List.init leaves (fun i -> (0, i + 1)))

(* Install an interest at [node] for [dest], then propagate it over
   every other link unless a covering profile was already sent there.
   The per-link forwarded tables are covering lattices, so the covered
   check scans only the covering-minimal roots. [count] controls
   whether propagation is charged to the message counter (retraction
   replays silently). *)
let rec add_interest t ~count node profile dest =
  let id = Engine.add_profile node.engine profile in
  Hashtbl.replace node.dests id dest;
  let came_from = match dest with Link n -> Some n | Local _ -> None in
  List.iter
    (fun nb ->
      if Some nb <> came_from then begin
        let fwd =
          match Hashtbl.find_opt node.forwarded nb with
          | Some l -> l
          | None ->
            let l = Lattice.create t.schema in
            Hashtbl.add node.forwarded nb l;
            l
        in
        if Option.is_none (Lattice.covered_by fwd profile) then begin
          let fid = t.next_fwd in
          t.next_fwd <- fid + 1;
          ignore (Lattice.add fwd ~id:fid profile);
          if count then begin
            t.sub_msgs <- t.sub_msgs + 1;
            count_incr t (fun i -> i.sub_messages_total)
          end;
          add_interest t ~count t.nodes.(nb) profile (Link node.id)
        end
      end)
    node.neighbors

let subscribe t ~at ~subscriber ~profile handler =
  if at < 0 || at >= Array.length t.nodes then
    invalid_arg "Router.subscribe: no such broker";
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  Hashtbl.replace t.live handle { at; subscriber; profile; handler };
  add_interest t ~count:true t.nodes.(at) profile
    (Local (subscriber, handler));
  handle

let unsubscribe t handle =
  match Hashtbl.find_opt t.live handle with
  | None -> false
  | Some _ ->
    Hashtbl.remove t.live handle;
    (* Retraction by recomputation: rebuild every broker's interest
       table in place from the remaining live subscriptions (replayed
       without charging subscription messages). The retraction fan-out
       is charged semantically: a forwarded entry that disappears
       costs one unsubscribe message on its link {e unless} a
       surviving entry on the same link still covers it — the
       neighbor's routing obligation is unchanged, so no message need
       cross the wire. In particular retracting a profile while an
       equivalent (or broader) one remains live costs nothing. The
       nodes themselves (and their engines) are kept: each engine
       re-plans against the replayed profile set while absorbing its
       learned event history, so one churn event does not reset
       distribution-based reordering network-wide. *)
    let before =
      Array.map
        (fun node ->
          Hashtbl.fold
            (fun nb fwd acc ->
              (nb, List.map snd (Lattice.entries fwd)) :: acc)
            node.forwarded [])
        t.nodes
    in
    Array.iter
      (fun node ->
        List.iter
          (fun id -> ignore (Engine.remove_profile node.engine id))
          (Profile_set.ids node.pset);
        Hashtbl.reset node.dests;
        Hashtbl.reset node.forwarded)
      t.nodes;
    let handles =
      Hashtbl.fold (fun h _ acc -> h :: acc) t.live [] |> List.sort Int.compare
    in
    List.iter
      (fun h ->
        let s = Hashtbl.find t.live h in
        add_interest t ~count:false t.nodes.(s.at) s.profile
          (Local (s.subscriber, s.handler)))
      handles;
    Array.iter (fun node -> Engine.refresh_keeping_history node.engine) t.nodes;
    let charged = ref 0 in
    Array.iteri
      (fun i links ->
        let node = t.nodes.(i) in
        List.iter
          (fun (nb, profiles) ->
            let after = Hashtbl.find_opt node.forwarded nb in
            List.iter
              (fun p ->
                let still_covered =
                  match after with
                  | None -> false
                  | Some fwd -> Option.is_some (Lattice.covered_by fwd p)
                in
                if not still_covered then incr charged)
              profiles)
          links)
      before;
    t.unsub_msgs <- t.unsub_msgs + !charged;
    count_add t (fun i -> i.unsub_messages_total) !charged;
    true

(* One unit of routing work: an event arriving at a broker. [deferred]
   marks arrivals that already went through the deferred queue (a
   paused broker defers an arrival at most once, so fault plans with
   pause probability 1.0 still terminate). *)
type job = { node : node_id; from : node_id option; deferred : bool }

(* Event propagation as an explicit worklist. The LIFO stack visits
   brokers in exactly the order the former recursive implementation
   did, so fault-free runs are bit-identical to pre-supervision
   behavior; link faults (drop/duplicate/delay) and broker pauses hook
   into the forwarding step, and delayed/paused work is parked on a
   FIFO queue that drains once the undelayed propagation is done. *)
let route t event ~at =
  let stack = ref [ { node = at; from = None; deferred = false } ] in
  let parked = Queue.create () in
  let park job = Queue.add job parked in
  let forward ~src job =
    t.event_msgs <- t.event_msgs + 1;
    count_incr t (fun i -> i.event_messages_total);
    match t.faults with
    | None -> stack := job :: !stack
    | Some plan -> (
      match Fault.link_fate plan ~src ~dst:job.node with
      | `Forward -> stack := job :: !stack
      | `Drop ->
        t.link_drops <- t.link_drops + 1;
        count_incr t (fun i -> i.link_drops_total)
      | `Duplicate ->
        (* The duplicate is a second message on the wire. *)
        t.event_msgs <- t.event_msgs + 1;
        count_incr t (fun i -> i.event_messages_total);
        t.link_duplicates <- t.link_duplicates + 1;
        count_incr t (fun i -> i.link_duplicates_total);
        stack := job :: job :: !stack
      | `Delay ->
        t.link_delays <- t.link_delays + 1;
        count_incr t (fun i -> i.link_delays_total);
        park job)
  in
  let pauses job =
    (not job.deferred)
    &&
    match t.faults with
    | None -> false
    | Some plan ->
      let hit = Fault.broker_pauses plan ~node:job.node in
      if hit then begin
        t.broker_pauses <- t.broker_pauses + 1;
        count_incr t (fun i -> i.broker_pauses_total)
      end;
      hit
  in
  let hop_span job f =
    match t.tracer with
    | Some tr when Trace.active tr ->
      Trace.with_span tr ~name:"router.hop" (fun () ->
          Trace.add_attr tr "broker" (string_of_int job.node);
          (match job.from with
          | Some src -> Trace.add_attr tr "from" (string_of_int src)
          | None -> ());
          f ())
    | _ -> f ()
  in
  let process job =
    if pauses job then park { job with deferred = true }
    else
      hop_span job @@ fun () ->
      let node = t.nodes.(job.node) in
      let matched = Engine.match_event node.engine event in
      let links = ref [] in
      List.iter
        (fun id ->
          match Hashtbl.find_opt node.dests id with
          | None -> ()
          | Some (Local (subscriber, handler)) ->
            if
              Supervise.deliver t.super ?faults:t.faults ~subscriber ~handler
                (Notification.make ~broker:node.id ~event
                   ~origin:(Notification.Primitive id) ~subscriber ())
            then begin
              t.notifications <- t.notifications + 1;
              count_incr t (fun i -> i.notifications_total)
            end
          | Some (Link nb) ->
            if Some nb <> job.from && not (List.mem nb !links) then
              links := nb :: !links)
        matched;
      (* Pushing in match order pops in reverse match order — the order
         the recursive implementation iterated [!links]. *)
      List.iter
        (fun nb ->
          forward ~src:node.id
            { node = nb; from = Some node.id; deferred = false })
        (List.rev !links)
  in
  let rec drain () =
    match !stack with
    | job :: rest ->
      stack := rest;
      process job;
      drain ()
    | [] ->
      if not (Queue.is_empty parked) then begin
        stack := [ Queue.pop parked ];
        drain ()
      end
  in
  drain ()

let publish_core t ~at event =
  count_incr t (fun i -> i.publishes_total);
  let before = t.notifications in
  route t event ~at;
  t.notifications - before

let publish t ~at event =
  if at < 0 || at >= Array.length t.nodes then
    invalid_arg "Router.publish: no such broker";
  match t.tracer with
  | None -> publish_core t ~at event
  | Some tr ->
    Trace.with_trace tr ~name:"router.publish" (fun () ->
        Trace.add_attr tr "at" (string_of_int at);
        publish_core t ~at event)

let sub_messages t = t.sub_msgs

let unsub_messages t = t.unsub_msgs

let event_messages t = t.event_msgs

let notifications t = t.notifications

let link_drops t = t.link_drops

let link_duplicates t = t.link_duplicates

let link_delays t = t.link_delays

let broker_pauses t = t.broker_pauses

let supervisor t = t.super

let tracer t = t.tracer

let dump_flight_recorder t = Option.map Trace.dump t.tracer

let deadletter t = Supervise.deadletter t.super

let faults t = t.faults

let broker_ops t id = Engine.ops t.nodes.(id).engine

let broker_stats t id = Engine.stats t.nodes.(id).engine

let interest_count t id = Profile_set.size t.nodes.(id).pset
