(** Supervised notification delivery: retry, backoff, circuit breaking,
    dead-lettering.

    Both the single-node {!Broker} and the routed {!Router} hand every
    handler invocation to a supervisor. An attempt that raises (for
    real, or because a {!Fault} plan injected a failure) is caught at
    the delivery boundary — one bad subscriber can never starve the
    others or corrupt the broker's counters — and retried under the
    supervisor's {!policy}: up to [max_attempts] attempts with
    exponential backoff and seeded jitter drawn from
    {!Genas_prng.Prng}, so the retry schedule is reproducible from
    [jitter_seed]. Backoffs are computed and recorded (metrics,
    {!trace}) rather than slept — the library is synchronous and
    deterministic; an embedding that schedules real redelivery can read
    the delay from the trace.

    Terminal failures land in a bounded {!Deadletter} queue. A
    per-subscriber circuit breaker (enabled when [trip_after > 0])
    opens after [trip_after] consecutive terminal failures; while open,
    deliveries to that subscriber are short-circuited straight to the
    dead-letter queue, and after [cooldown] short-circuits the next
    delivery runs as a single half-open probe — success closes the
    circuit, failure reopens it. *)

type policy = {
  max_attempts : int;  (** total attempts per delivery, including the first *)
  backoff_ns : float;  (** backoff before the second attempt, ns *)
  multiplier : float;  (** exponential backoff factor *)
  jitter : float;
      (** in [[0,1]]: each backoff is scaled by [1 - jitter * u] with
          [u] uniform on [[0,1)] *)
  jitter_seed : int;  (** seed of the jitter stream *)
  trip_after : int;
      (** consecutive terminal failures that open a subscriber's
          circuit; [0] disables the breaker *)
  cooldown : int;
      (** short-circuited deliveries before a half-open probe *)
}

val default_policy : policy
(** One attempt, no breaker: supervision only (exceptions are caught
    and dead-lettered, never retried). *)

val retry_policy :
  ?max_attempts:int ->
  ?backoff_ns:float ->
  ?multiplier:float ->
  ?jitter:float ->
  ?jitter_seed:int ->
  ?trip_after:int ->
  ?cooldown:int ->
  unit ->
  policy
(** {!default_policy} field-by-field, except [max_attempts] defaults
    to 3. *)

type circuit_state = Closed | Open | Half_open

type outcome = Delivered | Failed | Short_circuited

type record = {
  seq : int;  (** delivery sequence number (every delivery counts) *)
  subscriber : string;
  attempts : int;
  backoffs_ns : float list;  (** one scheduled backoff per retry *)
  outcome : outcome;
  error : string option;  (** last error for [Failed]/[Short_circuited] *)
}

type t

val create :
  ?policy:policy ->
  ?deadletter_capacity:int ->
  ?metrics:Genas_obs.Metrics.t ->
  ?tracer:Genas_obs.Trace.t ->
  prefix:string ->
  unit ->
  t
(** [prefix] names the metric family ("genas_broker",
    "genas_router", …); see docs/OBSERVABILITY.md for the suffixes.

    [tracer] records one ["deliver"] span (with a [subscriber]
    attribute) per supervised delivery and one ["deliver.attempt"]
    span per attempt; a terminal failure closes both with an error
    status and dumps the flight recorder
    ({!Genas_obs.Trace.record_crash}).

    @raise Invalid_argument on an invalid policy. *)

val policy : t -> policy

val deliver :
  t ->
  ?faults:Fault.t ->
  subscriber:string ->
  handler:Notification.handler ->
  Notification.t ->
  bool
(** Deliver one notification under supervision; [true] iff the handler
    accepted it on some attempt. Never raises on handler failure. *)

val deadletter : t -> Deadletter.t

val circuit : t -> string -> circuit_state
(** A subscriber's circuit ([Closed] when never seen). *)

(** {1 Counters} (plain integers, maintained with or without a metrics
    registry) *)

val deliveries : t -> int
(** Deliveries attempted (sequence numbers handed out). *)

val delivered : t -> int

val failures : t -> int
(** Failed attempts (a 3-attempt terminal failure counts 3). *)

val retries : t -> int

val deadlettered : t -> int

val short_circuited : t -> int

val trips : t -> int

(** {1 Trace} *)

val trace : t -> record list
(** Eventful deliveries — a retry, a failure, or a short-circuit;
    clean first-attempt deliveries are not traced — oldest first,
    bounded at 4096 entries. Identical seeds and workloads produce
    bit-identical traces. *)

val trace_dropped : t -> int

val pp_outcome : Format.formatter -> outcome -> unit

val pp_record : Format.formatter -> record -> unit

(** {1 Serialization}

    The supervisor's durable state: lifetime counters, every
    subscriber's circuit, and the position of the jitter stream (as a
    draw count — recovery replays the seed and discards that many
    draws, so post-recovery backoff schedules continue the original
    sequence exactly). The diagnostic trace is not persisted. *)

val circuits : t -> (string * circuit_state * int) list
(** Every circuit ever touched, sorted by subscriber, with its state
    and internal count (consecutive terminal failures when [Closed],
    short-circuits since the trip when [Open]). *)

module Export : sig
  type t = {
    deliveries : int;
    delivered : int;
    failures : int;
    retries : int;
    deadlettered : int;
    short_circuited : int;
    trips : int;
    jitter_draws : int;
    circuits : (string * circuit_state * int) list;
  }
end

val export : t -> Export.t

val import : t -> Export.t -> (unit, string) result
(** Restore exported state into a supervisor created with the same
    policy. Counters are overwritten (metrics advance by the
    non-negative delta), circuits replaced, and the jitter stream
    fast-forwarded. Fails if the target's jitter stream is already past
    the exported position. Importing repeatedly with non-decreasing
    exports (journal replay) is safe. *)
