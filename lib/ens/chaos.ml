(* Deterministic chaos scenario plans for mesh tests.

   A plan is a pregenerated array of per-step actions drawn from
   seeded {!Genas_prng.Prng} substreams — one for the action category,
   one for target selection — so the same seed and spec replay the
   identical scenario, and changing one category's probability never
   perturbs which targets the other categories pick (the same
   stream-splitting discipline as {!Fault.plan}).

   The plan only {e decides}; executing it (killing a server process,
   dropping a client's link, stalling a receiver) belongs to the test
   harness, which interleaves the actions with publish traffic and
   asserts that recovery machinery — auto-reconnect, replay,
   slow-consumer disconnects — converges every client back to the
   reference delivery set. *)

module Prng = Genas_prng.Prng

type action =
  | Calm  (** no fault this step *)
  | Kill_restart  (** kill the serving process mid-run, then restart it *)
  | Partition of int  (** sever client [i]'s link (it must self-heal) *)
  | Stall of int
      (** pause client [i]'s receiver until the server's bounded
          queue trips its slow-consumer policy *)

type spec = {
  steps : int;
  kill : float;
  partition : float;
  stall : float;
}

let default = { steps = 20; kill = 0.2; partition = 0.2; stall = 0.1 }

let action_name = function
  | Calm -> "calm"
  | Kill_restart -> "kill-restart"
  | Partition i -> Printf.sprintf "partition(%d)" i
  | Stall i -> Printf.sprintf "stall(%d)" i

let pp_action ppf a = Format.pp_print_string ppf (action_name a)

let to_string plan =
  String.concat " " (Array.to_list (Array.map action_name plan))

let plan ~seed ~clients spec =
  if spec.steps < 0 then invalid_arg "Chaos.plan: steps must be >= 0";
  let check name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Chaos.plan: %s outside [0,1]" name)
  in
  check "kill" spec.kill;
  check "partition" spec.partition;
  check "stall" spec.stall;
  if spec.kill +. spec.partition +. spec.stall > 1.0 then
    invalid_arg "Chaos.plan: probabilities sum above 1";
  if clients < 1 && spec.partition +. spec.stall > 0.0 then
    invalid_arg "Chaos.plan: targeted actions need at least one client";
  let root = Prng.create ~seed in
  let cat = Prng.split root in
  let target = Prng.split root in
  Array.init spec.steps (fun _ ->
      let u = Prng.float cat ~bound:1.0 in
      if u < spec.kill then Kill_restart
      else if u < spec.kill +. spec.partition then
        Partition (Prng.int target ~bound:clients)
      else if u < spec.kill +. spec.partition +. spec.stall then
        Stall (Prng.int target ~bound:clients)
      else Calm)

let counts plan =
  Array.fold_left
    (fun (calm, kill, part, stall) -> function
      | Calm -> (calm + 1, kill, part, stall)
      | Kill_restart -> (calm, kill + 1, part, stall)
      | Partition _ -> (calm, kill, part + 1, stall)
      | Stall _ -> (calm, kill, part, stall + 1))
    (0, 0, 0, 0) plan
