module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Ops = Genas_filter.Ops
module Metrics = Genas_obs.Metrics

let log_src = Logs.Src.create "genas.journal" ~doc:"GENAS write-ahead journal"

module Log = (val Logs.src_log log_src)

type config = { dir : string; snapshot_every : int; fsync : bool; seed : int }

let default_seed = 0x6a6c5eed

let config ?(snapshot_every = 512) ?(fsync = true) ?(seed = default_seed) dir =
  if snapshot_every < 1 then
    invalid_arg "Journal.config: snapshot_every must be positive";
  { dir; snapshot_every; fsync; seed }

type op =
  | Subscribe of { id : int; subscriber : string; profile : Profile.t }
  | Subscribe_composite of {
      id : int;
      subscriber : string;
      expr : Composite.expr;
    }
  | Unsubscribe_prim of { id : int }
  | Unsubscribe_comp of { id : int }
  | Publish of {
      events : Event.t array;
      batch : bool;
      published : int;
      notifications : int;
      ops : Ops.t;
      supervise : Supervise.Export.t;
      new_deadletters : Deadletter.entry list;
      dlq_total : int;
      dlq_dropped : int;
    }
  | Deadletter_replay of {
      published : int;
      notifications : int;
      supervise : Supervise.Export.t;
      dlq_entries : Deadletter.entry list;
      dlq_total : int;
      dlq_dropped : int;
    }

type instruments = {
  appends_total : Metrics.counter;
  bytes_total : Metrics.counter;
  fsyncs_total : Metrics.counter;
  fsync_ns : Metrics.histogram;
  snapshots_total : Metrics.counter;
  snapshot_install_ns : Metrics.histogram;
  truncations_total : Metrics.counter;
  replayed_ops_total : Metrics.counter;
  recoveries_total : Metrics.counter;
  size_bytes : Metrics.gauge;
}

let make_instruments registry =
  {
    appends_total =
      Metrics.counter registry "genas_journal_appends_total"
        ~help:"Operations appended to the write-ahead journal";
    bytes_total =
      Metrics.counter registry "genas_journal_bytes_total"
        ~help:"Framed bytes appended to the journal";
    fsyncs_total =
      Metrics.counter registry "genas_journal_fsyncs_total"
        ~help:"fsync calls issued by the journal";
    fsync_ns =
      Metrics.histogram registry "genas_journal_fsync_duration_ns"
        ~help:"Latency of one journal fsync (ns, monotonic)";
    snapshots_total =
      Metrics.counter registry "genas_journal_snapshots_total"
        ~help:"Snapshots installed (journal truncations after snapshot)";
    snapshot_install_ns =
      Metrics.histogram registry "genas_journal_snapshot_install_duration_ns"
        ~help:"Latency of one atomic snapshot install (ns, monotonic)";
    truncations_total =
      Metrics.counter registry "genas_journal_truncations_total"
        ~help:"Corrupt or torn journal tails truncated during recovery";
    replayed_ops_total =
      Metrics.counter registry "genas_journal_replayed_ops_total"
        ~help:"Journal operations replayed by recovery";
    recoveries_total =
      Metrics.counter registry "genas_journal_recoveries_total"
        ~help:"Successful Broker.recover completions";
    size_bytes =
      Metrics.gauge registry "genas_journal_size_bytes"
        ~help:"Current size of the journal file (bytes)";
  }

type t = {
  config : config;
  schema : Schema.t;
  mutable oc : out_channel;
  mutable next_op : int;
  mutable base_op : int;  (* lowest op index retained in journal.wal *)
  mutable since_snapshot : int;
  mutable file_bytes : int;
  mutable appends : int;
  mutable bytes : int;
  mutable snapshots : int;
  mutable truncations : int;
  mutable replayed : int;
  instruments : instruments option;
}

let magic = "GWAL001\n"

let header seed =
  let b = Buffer.create 16 in
  Buffer.add_string b magic;
  Codec.w_int b seed;
  Buffer.contents b

let header_len = 16

let wal_file cfg = Filename.concat cfg.dir "journal.wal"

let with_ins t f = match t.instruments with None -> () | Some ins -> f ins

let set_size t n =
  t.file_bytes <- n;
  with_ins t (fun ins -> Metrics.Gauge.set ins.size_bytes (float_of_int n))

(* fsync only makes kernel buffers durable: channel-buffered bytes that
   were never flushed are silently excluded from the barrier. Flushing
   here — unconditionally, before the descriptor sync — means no append
   path can reorder the two and report durability for data still
   sitting in the [out_channel] buffer. *)
let do_fsync t =
  flush t.oc;
  if t.config.fsync then begin
    match t.instruments with
    | None -> Unix.fsync (Unix.descr_of_out_channel t.oc)
    | Some ins ->
      let t0 = Genas_obs.Clock.now_ns () in
      Unix.fsync (Unix.descr_of_out_channel t.oc);
      let dt = Int64.to_float (Int64.sub (Genas_obs.Clock.now_ns ()) t0) in
      Metrics.Histogram.observe ins.fsync_ns (Float.max 0.0 dt);
      Metrics.Counter.incr ins.fsyncs_total
  end

let observe_snapshot_install t ~ns =
  with_ins t (fun ins ->
      Metrics.Histogram.observe ins.snapshot_install_ns (Float.max 0.0 ns))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Journal: %s exists and is not a directory" dir)

let create ?metrics schema cfg =
  mkdir_p cfg.dir;
  Snapshot.remove ~dir:cfg.dir;
  let oc = open_out_bin (wal_file cfg) in
  output_string oc (header cfg.seed);
  flush oc;
  let t =
    {
      config = cfg;
      schema;
      oc;
      next_op = 0;
      base_op = 0;
      since_snapshot = 0;
      file_bytes = header_len;
      appends = 0;
      bytes = 0;
      snapshots = 0;
      truncations = 0;
      replayed = 0;
      instruments = Option.map make_instruments metrics;
    }
  in
  do_fsync t;
  set_size t header_len;
  t

let configuration t = t.config

let ops_logged t = t.next_op

let base_op t = t.base_op

let appends t = t.appends

let snapshots_written t = t.snapshots

let truncations t = t.truncations

let replayed_ops t = t.replayed

let size_bytes t = t.file_bytes

(* {1 Record encoding} — payload is [op index | tag | fields]. *)

let encode_op schema opi op =
  let b = Buffer.create 256 in
  Codec.w_int b opi;
  (match op with
  | Subscribe { id; subscriber; profile } ->
    Codec.w_u8 b 0;
    Codec.w_int b id;
    Codec.w_string b subscriber;
    Codec.w_profile schema b profile
  | Subscribe_composite { id; subscriber; expr } ->
    Codec.w_u8 b 1;
    Codec.w_int b id;
    Codec.w_string b subscriber;
    Codec.w_expr schema b expr
  | Unsubscribe_prim { id } ->
    Codec.w_u8 b 2;
    Codec.w_int b id
  | Unsubscribe_comp { id } ->
    Codec.w_u8 b 3;
    Codec.w_int b id
  | Publish
      {
        events;
        batch;
        published;
        notifications;
        ops;
        supervise;
        new_deadletters;
        dlq_total;
        dlq_dropped;
      } ->
    Codec.w_u8 b 4;
    Codec.w_array Codec.w_event b events;
    Codec.w_bool b batch;
    Codec.w_int b published;
    Codec.w_int b notifications;
    Codec.w_ops b ops;
    Codec.w_supervise b supervise;
    Codec.w_list Codec.w_deadletter b new_deadletters;
    Codec.w_int b dlq_total;
    Codec.w_int b dlq_dropped
  | Deadletter_replay
      { published; notifications; supervise; dlq_entries; dlq_total; dlq_dropped }
    ->
    Codec.w_u8 b 5;
    Codec.w_int b published;
    Codec.w_int b notifications;
    Codec.w_supervise b supervise;
    Codec.w_list Codec.w_deadletter b dlq_entries;
    Codec.w_int b dlq_total;
    Codec.w_int b dlq_dropped);
  Buffer.contents b

let decode_op schema payload =
  let r = Codec.reader payload in
  let opi = Codec.r_int r in
  let op =
    match Codec.r_u8 r with
    | 0 ->
      let id = Codec.r_int r in
      let subscriber = Codec.r_string r in
      let profile = Codec.r_profile schema r in
      Subscribe { id; subscriber; profile }
    | 1 ->
      let id = Codec.r_int r in
      let subscriber = Codec.r_string r in
      let expr = Codec.r_expr schema r in
      Subscribe_composite { id; subscriber; expr }
    | 2 -> Unsubscribe_prim { id = Codec.r_int r }
    | 3 -> Unsubscribe_comp { id = Codec.r_int r }
    | 4 ->
      let events = Codec.r_array (Codec.r_event schema) r in
      let batch = Codec.r_bool r in
      let published = Codec.r_int r in
      let notifications = Codec.r_int r in
      let ops = Codec.r_ops r in
      let supervise = Codec.r_supervise r in
      let new_deadletters = Codec.r_list (Codec.r_deadletter schema) r in
      let dlq_total = Codec.r_int r in
      let dlq_dropped = Codec.r_int r in
      Publish
        {
          events;
          batch;
          published;
          notifications;
          ops;
          supervise;
          new_deadletters;
          dlq_total;
          dlq_dropped;
        }
    | 5 ->
      let published = Codec.r_int r in
      let notifications = Codec.r_int r in
      let supervise = Codec.r_supervise r in
      let dlq_entries = Codec.r_list (Codec.r_deadletter schema) r in
      let dlq_total = Codec.r_int r in
      let dlq_dropped = Codec.r_int r in
      Deadletter_replay
        { published; notifications; supervise; dlq_entries; dlq_total; dlq_dropped }
    | tag -> raise (Codec.Corrupt (Printf.sprintf "bad op tag %d" tag))
  in
  Codec.r_end r;
  (opi, op)

let append t ?faults op =
  let opi = t.next_op in
  let framed =
    Codec.frame ~seed:t.config.seed (encode_op t.schema opi op)
  in
  let crash =
    match faults with Some f -> Fault.journal_crash f ~op:opi | None -> None
  in
  match crash with
  | Some Fault.Crash_before_fsync ->
    (* Torn write: a prefix of the frame reaches the disk, the record
       is not durable. Recovery detects it by length/checksum and
       truncates. *)
    output_string t.oc (String.sub framed 0 ((String.length framed / 2) + 1));
    flush t.oc;
    raise (Fault.Crashed Fault.Crash_before_fsync)
  | Some Fault.Crash_mid_snapshot | Some Fault.Crash_after_journal | None -> (
    output_string t.oc framed;
    (* [do_fsync] flushes before syncing — the channel buffer is on
       disk before durability is claimed, on every append path. *)
    do_fsync t;
    t.next_op <- opi + 1;
    t.since_snapshot <- t.since_snapshot + 1;
    t.appends <- t.appends + 1;
    t.bytes <- t.bytes + String.length framed;
    set_size t (t.file_bytes + String.length framed);
    with_ins t (fun ins ->
        Metrics.Counter.incr ins.appends_total;
        Metrics.Counter.add ins.bytes_total (String.length framed));
    match crash with
    | Some Fault.Crash_after_journal ->
      (* The record is durable; the simulated process dies before the
         caller sees the acknowledgement. *)
      raise (Fault.Crashed Fault.Crash_after_journal)
    | _ -> ())

let snapshot_due t = t.since_snapshot >= t.config.snapshot_every

let wrote_snapshot t =
  (* The snapshot now covers every journaled op: restart the log. The
     old journal is only truncated after the snapshot's atomic rename,
     and records carry op indices, so a crash between the two steps
     merely replays ops the snapshot already covers (skipped by
     [last_op]). *)
  close_out t.oc;
  t.oc <- open_out_bin (wal_file t.config);
  output_string t.oc (header t.config.seed);
  do_fsync t;
  t.base_op <- t.next_op;
  t.since_snapshot <- 0;
  t.snapshots <- t.snapshots + 1;
  set_size t header_len;
  with_ins t (fun ins -> Metrics.Counter.incr ins.snapshots_total)

let close t = close_out t.oc

(* {1 Recovery} *)

type recovered = {
  snapshot : Snapshot.data option;
  tail : op list;
  truncated : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Catch-up cursor for the transport layer: re-read the live WAL and
   return every published event batch recorded after op [since],
   oldest first. [complete] is false when a snapshot has restarted the
   log past the cursor — the retained tail no longer reaches back to
   [since + 1], so the caller must fall back to full state transfer. *)
let events_since t ~since =
  flush t.oc;
  let contents = read_file (wal_file t.config) in
  let payloads, _, _ =
    if String.length contents < header_len then ([], 0, false)
    else Codec.parse_frames ~seed:t.config.seed contents ~pos:header_len
  in
  let batches =
    List.filter_map
      (fun payload ->
        match decode_op t.schema payload with
        | opi, Publish { events; _ } when opi > since -> Some (opi, events)
        | _ -> None
        | exception Codec.Corrupt _ -> None)
      payloads
  in
  (batches, t.base_op <= since + 1)

let recover ?metrics schema cfg =
  let path = wal_file cfg in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no journal at %s" path)
  else
    match Snapshot.read ~dir:cfg.dir ~seed:cfg.seed schema with
    | Error e -> Error e
    | Ok snapshot -> (
      let contents = read_file path in
      if
        String.length contents < header_len
        || not (String.equal (String.sub contents 0 8) magic)
      then Error "journal: bad header"
      else if
        Int64.to_int (String.get_int64_le contents (String.length magic))
        <> cfg.seed
      then Error "journal: checksum seed mismatch"
      else
        let payloads, valid_end, tail_corrupt =
          Codec.parse_frames ~seed:cfg.seed contents ~pos:header_len
        in
        match List.map (decode_op schema) payloads with
        | exception Codec.Corrupt msg -> Error ("journal: " ^ msg)
        | records ->
          let truncated =
            if tail_corrupt then begin
              (* Torn or corrupt tail: drop it physically so the next
                 append starts at a clean frame boundary. Never fatal. *)
              Log.warn (fun m ->
                  m "truncating %d corrupt byte(s) at the tail of %s"
                    (String.length contents - valid_end)
                    path);
              Unix.truncate path valid_end;
              1
            end
            else 0
          in
          let last_covered =
            match snapshot with Some s -> s.Snapshot.last_op | None -> -1
          in
          let tail =
            List.filter_map
              (fun (opi, op) -> if opi > last_covered then Some op else None)
              records
          in
          let next_op =
            List.fold_left
              (fun acc (opi, _) -> Stdlib.max acc (opi + 1))
              (last_covered + 1) records
          in
          let base_op =
            List.fold_left
              (fun acc (opi, _) -> Stdlib.min acc opi)
              next_op records
          in
          let oc =
            open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
          in
          let t =
            {
              config = cfg;
              schema;
              oc;
              next_op;
              base_op;
              since_snapshot = List.length tail;
              file_bytes = valid_end;
              appends = 0;
              bytes = 0;
              snapshots = 0;
              truncations = truncated;
              replayed = List.length tail;
              instruments = Option.map make_instruments metrics;
            }
          in
          set_size t valid_end;
          with_ins t (fun ins ->
              Metrics.Counter.add ins.truncations_total truncated;
              Metrics.Counter.add ins.replayed_ops_total (List.length tail);
              Metrics.Counter.incr ins.recoveries_total);
          Ok ({ snapshot; tail; truncated }, t))
