(** Wire transport for networked brokers.

    One {!message} is one {!Codec} frame on a stream socket: a u32 LE
    length prefix, a seeded FNV-1a 64 checksum, and a tagged binary
    payload using the same event/value encodings as the write-ahead
    journal. Frames are read through {!Codec.read_frame}, so a torn,
    oversized, or bit-flipped frame surfaces as a decode error before
    any allocation trusts the peer's length field.

    The protocol (see docs/NETWORKING.md): a client opens with [Hello]
    carrying the protocol version and its schema fingerprint; the
    server answers [Welcome] (with its current journal cursor) or
    [Reject]. Requests ([Subscribe]/[Unsubscribe]/[Publish]/[Replay])
    carry a client-chosen token echoed in [Ack]/[Nack]; [Deliver]
    frames arrive unsolicited, each tagged with the journal cursor of
    the publish record it came from so receivers deduplicate
    at-least-once delivery into exactly-once local application. *)

val protocol_version : int

val now_s : unit -> float
(** Monotonic seconds from {!Genas_obs.Clock} — the time base for
    every liveness deadline and request timeout in the networking
    stack, so tests can fake it. *)

(** {1 Liveness} *)

type heartbeat = { period_s : float; misses : int }
(** Idle-link liveness policy: after [period_s] without receiving
    anything a peer sends [Ping]; after [misses] periods with nothing
    received the link is declared half-dead and reaped. *)

val default_heartbeat : heartbeat
(** 5 s period, 3 misses (15 s detection deadline). *)

val heartbeat : ?period_s:float -> ?misses:int -> unit -> heartbeat
(** @raise Invalid_argument unless [period_s > 0] and [misses >= 1]. *)

val deadline_of : heartbeat -> float
(** [period_s *. misses]: seconds of received silence that count as a
    dead peer. *)

(** {1 Addresses} *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** Parse ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val addr_to_string : addr -> string

val sockaddr_of : addr -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr] (TCP hosts via [getaddrinfo]).

    @raise Failure when a TCP host cannot be resolved. *)

(** {1 Messages} *)

type ctx = (int * int) option
(** Optional wire trace context: the sender's active
    [(trace id, parent span id)] pair ({!Genas_obs.Trace.context}),
    adopted on the receiving node with
    {!Genas_obs.Trace.with_remote_trace} so hop spans parent correctly
    across processes. [None] when the sender traces nothing. *)

type peer_status = {
  ps_name : string;  (** peer node name ([""] before its Hello) *)
  ps_state : string;  (** ["up"], ["draining"], ... *)
  ps_queue : int;  (** frames queued toward this peer *)
  ps_last_rx_s : float;  (** seconds since last received frame *)
}

type node_status = {
  ns_node : string;
  ns_role : string;  (** ["server"], ["relay"], ["client"] *)
  ns_cursor : int;  (** journal cursor, [-1] when unjournaled *)
  ns_connections : int;
  ns_uptime_s : float;
  ns_peers : peer_status list;
  ns_counters : (string * int) list;
      (** counter snapshots from the node's metrics registry *)
}
(** One node's introspection snapshot, as carried by [Status]. *)

type message =
  | Hello of { version : int; fingerprint : string; name : string }
  | Welcome of {
      version : int;
      fingerprint : string;
      cursor : int;
      name : string;
          (** the server's node name, so downstream peers can label
              remote spans and status rows *)
    }
  | Reject of { reason : string }
  | Subscribe of { token : int; subscriber : string; body : string }
      (** [body] is profile-language source — the same re-parse
          contract as {!Store} and the journal *)
  | Unsubscribe of { token : int }
  | Publish of {
      token : int;
      origin : string;
          (** node name of the {e original} publisher — a relay
              forwarding downstream traffic upstream preserves it, so
              no-echo works across hops (names must be unique within a
              mesh; see docs/NETWORKING.md) *)
      events : Genas_model.Event.t array;
      ctx : ctx;
    }
  | Ack of { token : int; cursor : int; count : int }
      (** for a publish: the journal op index its record carries
          ([-1] unjournaled) and the number of events accepted *)
  | Nack of { token : int; reason : string }
  | Deliver of {
      cursor : int;  (** journal op index of the carrying record *)
      idx : int;  (** position within that record's event array *)
      replay : bool;  (** catch-up replay, not a live delivery *)
      origin : string;
          (** originating node name ([""] on journal replay — the WAL
              does not retain provenance) *)
      event : Genas_model.Event.t;
      ctx : ctx;
    }
  | Replay of { since : int; ctx : ctx }
      (** request redelivery of every journaled publish with op index
          [> since] that matches this connection's subscriptions *)
  | Replay_done of { cursor : int; complete : bool }
      (** [complete = false]: a snapshot discarded part of the range *)
  | Bye
  | Ping of { token : int }
      (** liveness probe; the receiver answers [Pong] with the same
          token. Any received frame counts as liveness — pings only
          flow on otherwise-idle links. *)
  | Pong of { token : int }
  | Status_req of { token : int }
      (** mesh introspection probe: the receiver answers [Status] with
          the same token, its own {!node_status}, and — on a relay —
          the statuses collected from the rest of its upstream chain *)
  | Status of { token : int; nodes : node_status list }
      (** answering node first, then upstream nodes in hop order *)

val encode_message : message -> string

val decode_message : Genas_model.Schema.t -> string -> message
(** @raise Codec.Corrupt on a malformed payload. *)

val message_name : message -> string

(** {1 Connections} *)

type conn

val default_seed : int
(** Default frame-checksum seed; both peers must use the same one. *)

val conn_of_fd : ?seed:int -> ?max_frame:int -> Unix.file_descr -> conn

val conn_fd : conn -> Unix.file_descr

val send : conn -> message -> unit
(** Frame and write one message (mutex-serialized per connection —
    deliveries fan out from other connections' threads). *)

val recv :
  conn ->
  Genas_model.Schema.t ->
  (message, [ `Eof | `Corrupt of string ]) result
(** Block for the next frame. [`Eof] is a clean close between frames;
    anything undecodable — torn frame, checksum mismatch, hostile
    length, bad tag — is [`Corrupt]. *)

val set_recv_timeout : conn -> float option -> unit
(** Set ([Some seconds]) or clear ([None]) a kernel receive deadline
    ([SO_RCVTIMEO]) on the connection: a blocked {!recv} then fails
    with [`Eof] instead of parking forever. Only safe around the
    handshake — a mid-stream timeout desyncs the frame boundary, so
    the connection must be abandoned after one fires. *)

val shutdown_conn : conn -> unit
(** [shutdown(2)] both directions, waking any thread blocked in
    {!recv} with [`Eof] — closing the descriptor alone does not.
    Always shut down before joining a receiver thread. *)

val close_conn : conn -> unit

(** {1 Listening and dialing} *)

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Bind and listen. A stale Unix-domain socket file is replaced; TCP
    sockets set [SO_REUSEADDR]. *)

val accept : ?seed:int -> ?max_frame:int -> Unix.file_descr -> conn
(** Block for one inbound connection. *)

val dial : ?seed:int -> ?max_frame:int -> addr -> conn
