(** GENAS — the generic parameterized event notification service.

    The paper's prototype (§5: "we are currently implementing the
    prototype of a generic parameterized Event Notification System
    (GENAS) that is based on the filter algorithm introduced here") is
    a service in which "all events, attributes, domains, and compare
    operators can be created and specified at runtime" (§4.2). This
    facade provides exactly that: named schemas and named brokers are
    defined at runtime, and all interaction — schema definitions,
    subscriptions, events — can go through the textual formats, so a
    deployment needs no compiled-in application types. *)

type t

val create : ?metrics:Genas_obs.Metrics.t -> unit -> t
(** [metrics] is the service-wide default registry: every broker
    created through {!create_broker} without its own [?metrics] is
    instrumented into it. Brokers sharing one registry share the
    broker-level instruments (the unlabelled counters aggregate across
    them; per-subscriber delivery counters stay distinct through their
    labels) — pass a per-broker registry to {!create_broker} when
    brokers must not alias. *)

(** {1 Schemas} *)

val define_schema :
  t -> name:string -> (string * Genas_model.Domain.t) list ->
  (unit, string) result
(** Fails on duplicate schema names or invalid attribute lists. *)

val define_schema_text :
  t -> name:string -> string list -> (unit, string) result
(** Each line ["attr : DOMAIN"] as in {!Store}. *)

val find_schema : t -> string -> Genas_model.Schema.t option

val schemas : t -> string list
(** Defined schema names, sorted. *)

(** {1 Brokers} *)

val create_broker :
  t ->
  name:string ->
  schema:string ->
  ?spec:Genas_core.Reorder.spec ->
  ?adaptive:Genas_core.Adaptive.policy ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?journal:Journal.config ->
  unit ->
  (unit, string) result
(** Fails on duplicate broker names or unknown schemas. [metrics]
    overrides the service-wide registry passed to {!create}; omitted,
    the service registry (if any) is used, so brokers created through
    the service layer are never silently uninstrumentable. [retry],
    [faults], and [journal] (durability — a fresh write-ahead journal)
    are forwarded to {!Broker.create}. *)

val recover_broker :
  t ->
  name:string ->
  schema:string ->
  ?spec:Genas_core.Reorder.spec ->
  ?adaptive:Genas_core.Adaptive.policy ->
  ?metrics:Genas_obs.Metrics.t ->
  ?retry:Supervise.policy ->
  ?faults:Fault.t ->
  ?handlers:(subscriber:string -> Notification.handler) ->
  journal:Journal.config ->
  unit ->
  (unit, string) result
(** Register a broker rebuilt from a journal directory via
    {!Broker.recover}. Fails like {!create_broker}, or when recovery
    itself fails (no journal, corrupt snapshot, schema mismatch). *)

val find_broker : t -> string -> Broker.t option

val brokers : t -> string list

(** {1 Textual interaction} *)

val subscribe :
  t -> broker:string -> subscriber:string -> string ->
  Notification.handler -> (Broker.sub_id, string) result
(** Profile body in the profile language. *)

val publish :
  t -> broker:string -> string -> (int, string) result
(** Event in the event syntax; returns the notification count. *)

val report : t -> broker:string -> (string, string) result
(** One-line status: subscriptions, events filtered, comparisons per
    event, adaptive rebuilds. *)
