(** Bounded dead-letter queue.

    Notifications whose delivery failed terminally — the handler raised
    (or a fault plan made it raise) on every attempt the retry policy
    allowed, or the subscriber's circuit breaker was open — land here
    instead of disappearing. The queue is bounded: at capacity the
    oldest entry is evicted (and counted in {!dropped}), so a
    permanently broken subscriber can never leak unbounded memory.

    Every {!Broker} and {!Router} owns one (see [deadletter] there);
    operators inspect or drain it to decide whether to replay, alert,
    or discard. *)

type entry = {
  notification : Notification.t;  (** the undeliverable notification *)
  attempts : int;
      (** delivery attempts made (0 when short-circuited by an open
          circuit breaker) *)
  error : string;  (** printed form of the last exception *)
  seq : int;  (** supervisor delivery sequence number, for ordering *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 1024. [0] keeps nothing (every push is
    dropped but still counted).

    @raise Invalid_argument on a negative capacity. *)

val capacity : t -> int

val length : t -> int
(** Entries currently held. *)

val total : t -> int
(** Entries ever pushed, including dropped ones. *)

val dropped : t -> int
(** Entries evicted (or rejected at capacity 0). *)

val push : t -> entry -> unit

val take : t -> entry option
(** Pop the oldest entry (e.g. to replay it). *)

val entries : t -> entry list
(** Oldest first; the queue is left untouched. *)

val iter : t -> (entry -> unit) -> unit

val clear : t -> unit

val replay : t -> deliver:(entry -> bool) -> int * int
(** [replay t ~deliver] drains the queue and feeds every held entry to
    [deliver], oldest first; returns [(redelivered, failed)] counts of
    [true]/[false] results. The queue is emptied {e before} the first
    call, so a [deliver] that routes back through supervised delivery
    may dead-letter the entry again without this pass picking it up a
    second time. See {!Broker.replay_deadletters} for the wired-up
    form. *)

(** {1 Recovery} *)

val restore : t -> entry list -> total:int -> dropped:int -> unit
(** Replace the queue's contents and lifetime counters with journaled
    state (entries oldest first; trimmed to capacity from the front).

    @raise Invalid_argument on negative counters. *)

val force_counters : t -> total:int -> dropped:int -> unit
(** Overwrite just the lifetime counters — used when replay has re-pushed
    journaled entries and the absolute counters must win over the
    replayed increments.

    @raise Invalid_argument on negative counters. *)
