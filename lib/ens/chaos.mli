(** Deterministic chaos scenario plans for mesh tests.

    Extends the {!Fault} discipline — all randomness through seeded
    {!Genas_prng.Prng} substreams, one per decision category — from
    single-delivery faults up to whole-topology scenarios: server
    kill/restart cycles, link partitions, and stalled-consumer
    backpressure trips. A plan is pregenerated, so the harness can
    print it, replay it, and bisect on it; the same [(seed, spec,
    clients)] triple always yields the same action sequence.

    The plan decides, the harness executes: see
    [test/test_mesh.ml]'s chaos differential, which interleaves a
    plan's actions with publish traffic over a relay chain and asserts
    every client converges to the reference (flat-Router) delivery
    set with no operator intervention. *)

type action =
  | Calm  (** no fault this step *)
  | Kill_restart  (** kill the serving process mid-run, then restart it *)
  | Partition of int  (** sever client [i]'s link (it must self-heal) *)
  | Stall of int
      (** pause client [i]'s receiver until the server's bounded
          queue trips its slow-consumer policy *)

type spec = {
  steps : int;
  kill : float;  (** per-step probability of [Kill_restart] *)
  partition : float;  (** … of [Partition] *)
  stall : float;  (** … of [Stall]; remainder is [Calm] *)
}

val default : spec
(** 20 steps: 20% kill, 20% partition, 10% stall. *)

val plan : seed:int -> clients:int -> spec -> action array
(** Pregenerate the scenario. Targets are uniform over
    [[0, clients-1]], drawn from their own substream so category
    probabilities never perturb target choice.

    @raise Invalid_argument on probabilities outside [[0,1]], a sum
    above 1, negative [steps], or targeted probabilities with
    [clients < 1]. *)

val counts : action array -> int * int * int * int
(** [(calm, kill, partition, stall)] totals. *)

val action_name : action -> string

val pp_action : Format.formatter -> action -> unit

val to_string : action array -> string
(** Space-separated action names — stable, printable plan identity. *)
