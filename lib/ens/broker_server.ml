(* A networked broker: one OS process serving the Codec wire protocol
   over a listening socket, one thread per connection, all broker state
   serialized under a single lock (the broker itself is the paper's
   single-node engine — the transport adds fan-out, not parallelism).

   Delivery: a remote subscription installs a normal broker handler
   that queues the event on its connection; after the publish returns,
   the queues flush as [Deliver] frames tagged with the journal cursor
   of the publish record, skipping the originating connection (its own
   local broker already delivered — the Router's no-echo rule). The
   deterministic link-fault plan applies to live deliveries only:
   control frames and catch-up replay are never faulted, mirroring how
   {!Router.route} faults forwarding but not subscription management. *)

module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Lang = Genas_profile.Lang
module Engine = Genas_core.Engine

let log_src = Logs.Src.create "genas.server" ~doc:"GENAS broker server"

module Log = (val Logs.src_log log_src)

type conn_state = {
  id : int;
  conn : Transport.conn;
  mutable peer : string;
  subs : (int, Broker.sub_id * Profile.t) Hashtbl.t;
  mutable pending : (int * int * Event.t) list;  (* newest first *)
  mutable delayed : (int * int * Event.t) list;
  mutable alive : bool;
}

type t = {
  broker : Broker.t;
  addr : Transport.addr;
  seed : int;
  max_frame : int;
  faults : Fault.t option;
  lock : Mutex.t;
  conns : (int, conn_state) Hashtbl.t;
  mutable next_conn : int;
  mutable plain_cursor : int;  (* op counter for unjournaled brokers *)
  mutable cur_cursor : int;  (* cursor of the publish in flight *)
  mutable lsock : Unix.file_descr option;
  mutable acceptor : Thread.t option;
  mutable workers : Thread.t list;
  mutable closed_conns : int;
  mutable stopping : bool;
  mutable crashed : bool;
}

let create ?faults ?(seed = Transport.default_seed)
    ?(max_frame = Codec.default_max_frame) ~broker addr =
  (* A peer that disconnects mid-write must surface as [Sys_error],
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* The broker is long-lived now: epoch-swap recompiles move off the
     publishing thread onto a background domain. *)
  if Engine.aggregated (Broker.engine broker) then
    Engine.set_async_swaps (Broker.engine broker) true;
  {
    broker;
    addr;
    seed;
    max_frame;
    faults;
    lock = Mutex.create ();
    conns = Hashtbl.create 8;
    next_conn = 1;
    plain_cursor = 0;
    cur_cursor = -1;
    lsock = None;
    acceptor = None;
    workers = [];
    closed_conns = 0;
    stopping = false;
    crashed = false;
  }

let broker t = t.broker

let crashed t = t.crashed

let cursor t =
  match Broker.wal t.broker with
  | Some j -> Journal.ops_logged j
  | None -> t.plain_cursor

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let safe_send cs msg =
  if cs.alive then
    try Transport.send cs.conn msg
    with Sys_error _ | Unix.Unix_error _ -> cs.alive <- false

(* One [Deliver] per (connection, event) even when several of the
   connection's subscriptions match: within one publish the same
   physical event reaches every matching handler consecutively, so a
   head check suffices. *)
let enqueue_delivery t cs (n : Notification.t) =
  let ev = n.Notification.event in
  match cs.pending with
  | (_, _, e) :: _ when e == ev -> ()
  | _ -> cs.pending <- (t.cur_cursor, 0, ev) :: cs.pending

let link_fate t cs =
  match t.faults with
  | None -> `Forward
  | Some f -> Fault.link_fate f ~src:0 ~dst:cs.id

(* Flush queued deliveries after a publish, applying the link-fault
   plan per frame. Delayed frames from the previous flush go out first
   (they are "late", not lost); the originating connection's queue is
   discarded unsent. Called under the lock. *)
let flush_deliveries ?(skip = -1) t =
  Hashtbl.iter
    (fun _ cs ->
      let pending = List.rev cs.pending in
      cs.pending <- [];
      if cs.id = skip then ()
      else begin
        let late = List.rev cs.delayed in
        cs.delayed <- [];
        List.iter
          (fun (cur, idx, event) ->
            safe_send cs (Transport.Deliver { cursor = cur; idx; replay = false; event }))
          late;
        List.iter
          (fun ((cur, idx, event) as entry) ->
            match link_fate t cs with
            | `Forward ->
              safe_send cs
                (Transport.Deliver { cursor = cur; idx; replay = false; event })
            | `Duplicate ->
              let d = Transport.Deliver { cursor = cur; idx; replay = false; event } in
              safe_send cs d;
              safe_send cs d
            | `Drop -> ()
            | `Delay -> cs.delayed <- entry :: cs.delayed)
          pending
      end)
    t.conns

(* Publish a batch of events through the broker, one journal record
   per event (so cursors are dense and the acknowledgement can name
   the whole range), then flush deliveries. Returns the cursor of the
   first record. Called under the lock. *)
let publish_locked ?(skip = -1) t events =
  let first = cursor t in
  (try
     Array.iter
       (fun ev ->
         t.cur_cursor <- cursor t;
         ignore (Broker.publish t.broker ev);
         if Broker.wal t.broker = None then
           t.plain_cursor <- t.plain_cursor + 1)
       events
   with Fault.Crashed _ as e ->
     t.crashed <- true;
     t.stopping <- true;
     raise e);
  flush_deliveries ~skip t;
  first

let publish t events =
  with_lock t (fun () -> publish_locked t events)

let connections t = with_lock t (fun () -> Hashtbl.length t.conns)

(* {1 Connection protocol} *)

let drop_conn t cs =
  with_lock t (fun () ->
      if Hashtbl.mem t.conns cs.id then begin
        Hashtbl.remove t.conns cs.id;
        t.closed_conns <- t.closed_conns + 1;
        Hashtbl.iter
          (fun _ (sid, _) -> ignore (Broker.unsubscribe t.broker sid))
          cs.subs;
        Hashtbl.reset cs.subs
      end);
  cs.alive <- false;
  Transport.close_conn cs.conn

let handle_subscribe t cs ~token ~subscriber ~body =
  with_lock t (fun () ->
      if Hashtbl.mem cs.subs token then
        safe_send cs (Transport.Ack { token; cursor = cursor t; count = 0 })
      else
        match Lang.parse_profile (Broker.schema t.broker) body with
        | Error reason -> safe_send cs (Transport.Nack { token; reason })
        | Ok profile ->
          let sid =
            Broker.subscribe t.broker ~subscriber ~profile
              (enqueue_delivery t cs)
          in
          Hashtbl.replace cs.subs token (sid, profile);
          safe_send cs (Transport.Ack { token; cursor = cursor t; count = 0 }))

let handle_unsubscribe t cs ~token =
  with_lock t (fun () ->
      (match Hashtbl.find_opt cs.subs token with
      | Some (sid, _) ->
        ignore (Broker.unsubscribe t.broker sid);
        Hashtbl.remove cs.subs token
      | None -> ());
      safe_send cs (Transport.Ack { token; cursor = cursor t; count = 0 }))

let handle_publish t cs ~token ~events =
  with_lock t (fun () ->
      match publish_locked ~skip:cs.id t events with
      | first ->
        safe_send cs
          (Transport.Ack
             {
               token;
               cursor = (if Broker.wal t.broker = None then -1 else first);
               count = Array.length events;
             })
      | exception Fault.Crashed _ ->
        (* Simulated process death: the record may or may not be
           durable; the client learns from the dropped connection and
           recovers through reconnect + replay. *)
        ())

(* Catch-up: re-deliver journaled publishes after the client's cursor,
   filtered through this connection's own subscriptions. Never
   link-faulted — replay is the recovery path the faults are recovered
   {e through}. *)
let handle_replay t cs ~since =
  with_lock t (fun () ->
      match Broker.wal t.broker with
      | None ->
        safe_send cs
          (Transport.Replay_done { cursor = cursor t; complete = false })
      | Some j ->
        let batches, complete = Journal.events_since j ~since in
        let schema = Broker.schema t.broker in
        List.iter
          (fun (opi, events) ->
            Array.iteri
              (fun idx event ->
                let matches =
                  Hashtbl.fold
                    (fun _ (_, profile) acc ->
                      acc || Profile.matches schema profile event)
                    cs.subs false
                in
                if matches then
                  safe_send cs
                    (Transport.Deliver { cursor = opi; idx; replay = true; event }))
              events)
          batches;
        safe_send cs (Transport.Replay_done { cursor = cursor t; complete }))

let serve_conn t cs =
  let schema = Broker.schema t.broker in
  let rec loop () =
    if t.stopping || not cs.alive then ()
    else
      match Transport.recv cs.conn schema with
      | Error `Eof -> ()
      | Error (`Corrupt msg) ->
        (* A torn frame, checksum failure, or hostile length kills the
           connection — the stream is unrecoverable past a framing
           error — but never the server. *)
        Log.warn (fun m -> m "conn %d (%s): corrupt frame: %s" cs.id cs.peer msg);
        safe_send cs (Transport.Reject { reason = "corrupt frame: " ^ msg })
      | Ok msg -> (
        match msg with
        | Transport.Bye -> ()
        | Transport.Subscribe { token; subscriber; body } ->
          handle_subscribe t cs ~token ~subscriber ~body;
          loop ()
        | Transport.Unsubscribe { token } ->
          handle_unsubscribe t cs ~token;
          loop ()
        | Transport.Publish { token; events } ->
          handle_publish t cs ~token ~events;
          if t.stopping then () else loop ()
        | Transport.Replay { since } ->
          handle_replay t cs ~since;
          loop ()
        | Transport.Hello _ | Transport.Welcome _ | Transport.Reject _
        | Transport.Ack _ | Transport.Nack _ | Transport.Deliver _
        | Transport.Replay_done _ ->
          safe_send cs
            (Transport.Nack
               {
                 token = -1;
                 reason = "unexpected " ^ Transport.message_name msg;
               });
          loop ())
  in
  let handshake () =
    match Transport.recv cs.conn schema with
    | Ok (Transport.Hello { version; fingerprint; name }) ->
      if version <> Transport.protocol_version then
        safe_send cs
          (Transport.Reject
             {
               reason =
                 Printf.sprintf "protocol version %d, expected %d" version
                   Transport.protocol_version;
             })
      else begin
        let own = Codec.schema_fingerprint schema in
        if not (String.equal fingerprint own) then
          safe_send cs (Transport.Reject { reason = "schema fingerprint mismatch" })
        else begin
          cs.peer <- name;
          with_lock t (fun () ->
              safe_send cs
                (Transport.Welcome
                   {
                     version = Transport.protocol_version;
                     fingerprint = own;
                     cursor = cursor t;
                   }));
          loop ()
        end
      end
    | Ok _ | Error _ ->
      safe_send cs (Transport.Reject { reason = "expected hello" })
  in
  (try handshake () with Sys_error _ | Unix.Unix_error _ -> ());
  drop_conn t cs

(* {1 Lifecycle} *)

let ensure_listening t =
  match t.lsock with
  | Some _ -> ()
  | None -> t.lsock <- Some (Transport.listen t.addr)

let accept_one t sock =
  let conn = Transport.accept ~seed:t.seed ~max_frame:t.max_frame sock in
  let cs =
    with_lock t (fun () ->
        let id = t.next_conn in
        t.next_conn <- id + 1;
        let cs =
          {
            id;
            conn;
            peer = "";
            subs = Hashtbl.create 4;
            pending = [];
            delayed = [];
            alive = true;
          }
        in
        Hashtbl.replace t.conns id cs;
        cs)
  in
  let th = Thread.create (fun () -> serve_conn t cs) () in
  t.workers <- th :: t.workers

let close_listener t =
  match t.lsock with
  | Some sock ->
    t.lsock <- None;
    (* Like connections: a thread blocked in accept(2) is only woken
       by shutdown, not by close. *)
    (try Unix.shutdown sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (match t.addr with
    | Transport.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Transport.Tcp _ -> ())
  | None -> ()

let teardown t =
  close_listener t;
  let conns = with_lock t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []) in
  (* Shut down (not close): wake each worker out of its blocking read
     with EOF; the worker's own exit path closes the descriptor. *)
  List.iter (fun cs -> cs.alive <- false; Transport.shutdown_conn cs.conn) conns;
  List.iter (fun th -> try Thread.join th with _ -> ()) t.workers;
  t.workers <- [];
  Engine.await_swap (Broker.engine t.broker)

(* Run the accept loop on the calling thread. With [connections = n],
   accept exactly [n] connections and return once all of them have
   disconnected; with [0], loop until {!stop}. *)
let serve ?(connections = 0) t =
  ensure_listening t;
  let sock = Option.get t.lsock in
  let accepted = ref 0 in
  (try
     while
       (not t.stopping) && (connections = 0 || !accepted < connections)
     do
       accept_one t sock;
       incr accepted
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* Wait for the accepted connections to finish before tearing down. *)
  List.iter (fun th -> try Thread.join th with _ -> ()) t.workers;
  t.workers <- [];
  teardown t

let start t =
  ensure_listening t;
  let sock = Option.get t.lsock in
  t.acceptor <-
    Some
      (Thread.create
         (fun () ->
           try
             while not t.stopping do
               accept_one t sock
             done
           with Unix.Unix_error _ | Sys_error _ -> ())
         ())

let stop t =
  t.stopping <- true;
  (* Unblock the acceptor first so no new connection races teardown. *)
  close_listener t;
  (match t.acceptor with
  | Some th ->
    t.acceptor <- None;
    (try Thread.join th with _ -> ())
  | None -> ());
  teardown t
