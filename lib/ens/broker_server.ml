(* A networked broker: one OS process serving the Codec wire protocol
   over a listening socket, one thread per connection, all broker state
   serialized under a single lock (the broker itself is the paper's
   single-node engine — the transport adds fan-out, not parallelism).

   Delivery: a remote subscription installs a normal broker handler
   that queues the event on its connection; after the publish returns,
   the queues flush as [Deliver] frames tagged with the journal cursor
   of the publish record, skipping both the originating connection and
   any connection whose peer name equals the event's origin (its own
   local broker already delivered — the Router's no-echo rule, made
   reconnect- and relay-proof by the origin tag). The deterministic
   link-fault plan applies to live deliveries only: control frames and
   catch-up replay are never faulted, mirroring how {!Router.route}
   faults forwarding but not subscription management.

   Robustness (see docs/ROBUSTNESS.md):
   - Every connection owns a bounded outbound queue drained by a
     writer thread, so a stalled consumer can never block the broker
     lock or grow memory without limit; at [max_queue] the connection
     is declared a slow consumer and dropped — journal-backed replay
     is its graceful catch-up path.
   - A liveness monitor pings idle peers and reaps connections that
     have received nothing for [heartbeat.period_s * misses] seconds,
     so a half-dead TCP peer (no FIN) is detected and collected. *)

module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Lang = Genas_profile.Lang
module Engine = Genas_core.Engine
module Metrics = Genas_obs.Metrics
module Trace = Genas_obs.Trace
module Clock = Genas_obs.Clock

let log_src = Logs.Src.create "genas.server" ~doc:"GENAS broker server"

module Log = (val Logs.src_log log_src)

type conn_state = {
  id : int;
  conn : Transport.conn;
  mutable peer : string;
  subs : (int, Broker.sub_id * Profile.t * string) Hashtbl.t;
  mutable pending : (int * int * string * Event.t) list;  (* newest first *)
  mutable delayed : (int * int * string * Event.t) list;
  mutable alive : bool;
  (* Outbound: a bounded queue drained by a dedicated writer thread.
     Enqueueing never blocks and never touches the broker lock. Each
     entry is stamped at enqueue so the writer can observe how long it
     sat queued ([genas_net_queue_wait_ns]). *)
  txq : (Transport.message * int64) Queue.t;
  tx_mutex : Mutex.t;
  tx_cond : Condition.t;
  mutable tx_stop : bool;
  mutable tx_thread : Thread.t option;
  mutable last_rx : float;
  mutable last_tx : float;
}

type hooks = {
  on_accept :
    (conn_id:int ->
    origin:string ->
    ctx:Transport.ctx ->
    Event.t array ->
    unit)
    option;
  on_subscribe :
    (conn_id:int -> token:int -> subscriber:string -> body:string -> unit)
    option;
  on_unsubscribe : (conn_id:int -> token:int -> body:string -> unit) option;
}

type t = {
  broker : Broker.t;
  addr : Transport.addr;
  name : string;
  role : string;
  tracer : Trace.t option;
  metrics : Metrics.t option;
  started_s : float;
  seed : int;
  max_frame : int;
  max_queue : int;
  sndbuf : int option;
  heartbeat : Transport.heartbeat option;
  tick_s : float;
  faults : Fault.t option;
  hooks : hooks;
  lock : Mutex.t;
  conns : (int, conn_state) Hashtbl.t;
  mutable next_conn : int;
  mutable plain_cursor : int;  (* op counter for unjournaled brokers *)
  mutable cur_cursor : int;  (* cursor of the publish in flight *)
  mutable cur_origin : string;  (* origin of the publish in flight *)
  mutable lsock : Unix.file_descr option;
  mutable acceptor : Thread.t option;
  mutable monitor : Thread.t option;
  mutable workers : Thread.t list;
  mutable closed_conns : int;
  mutable slow_disconnects : int;
  mutable reaped : int;
  mutable pings_sent : int;
  mutable stopping : bool;
  mutable crashed : bool;
  (* Mesh introspection: with [None] a [Status_req] answers with this
     node's own snapshot; a relay installs a collector that appends
     the statuses gathered from the rest of its upstream chain. *)
  mutable on_status : (unit -> Transport.node_status list) option;
  m_connections : Metrics.gauge option;
  m_queue_depth : Metrics.histogram option;
  m_slow : Metrics.counter option;
  m_hb_misses : Metrics.counter option;
  m_rx_apply : Metrics.histogram option;
  m_queue_wait : Metrics.histogram option;
}

let create ?faults ?(seed = Transport.default_seed)
    ?(max_frame = Codec.default_max_frame) ?(name = "server")
    ?(role = "server") ?tracer ?(max_queue = 1024) ?sndbuf
    ?(heartbeat = Some Transport.default_heartbeat) ?(tick_s = 0.05) ?metrics
    ?on_accept ?on_subscribe ?on_unsubscribe ~broker addr =
  if max_queue < 1 then
    invalid_arg "Broker_server.create: max_queue must be >= 1";
  (* A peer that disconnects mid-write must surface as [Sys_error],
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* The broker is long-lived now: epoch-swap recompiles move off the
     publishing thread onto a background domain. *)
  if Engine.aggregated (Broker.engine broker) then
    Engine.set_async_swaps (Broker.engine broker) true;
  let labels = [ ("node", name); ("role", role) ] in
  let m_connections =
    Option.map
      (fun m ->
        Metrics.gauge m ~labels ~help:"Live peer connections"
          "genas_net_peer_state")
      metrics
  and m_queue_depth =
    Option.map
      (fun m ->
        Metrics.histogram m ~labels
          ~help:"Outbound frames queued per connection at enqueue time"
          ~buckets:(Metrics.exponential_buckets ~start:1.0 ~factor:2.0 ~count:13)
          "genas_net_outbound_queue_depth")
      metrics
  and m_slow =
    Option.map
      (fun m ->
        Metrics.counter m ~labels
          ~help:"Connections dropped by the bounded-queue slow-consumer policy"
          "genas_net_slow_consumer_disconnects_total")
      metrics
  and m_hb_misses =
    Option.map
      (fun m ->
        Metrics.counter m ~labels
          ~help:"Peers reaped after missing the heartbeat deadline"
          "genas_net_heartbeat_misses_total")
      metrics
  and m_rx_apply =
    Option.map
      (fun m ->
        Metrics.histogram m ~labels
          ~help:"Time applying one received publish batch, ns"
          "genas_net_rx_apply_duration_ns")
      metrics
  and m_queue_wait =
    Option.map
      (fun m ->
        Metrics.histogram m ~labels
          ~help:"Outbound frame wait between enqueue and socket write, ns"
          "genas_net_queue_wait_ns")
      metrics
  in
  {
    broker;
    addr;
    name;
    role;
    tracer;
    metrics;
    started_s = Transport.now_s ();
    seed;
    max_frame;
    max_queue;
    sndbuf;
    heartbeat;
    tick_s;
    faults;
    hooks = { on_accept; on_subscribe; on_unsubscribe };
    lock = Mutex.create ();
    conns = Hashtbl.create 8;
    next_conn = 1;
    plain_cursor = 0;
    cur_cursor = -1;
    cur_origin = "";
    lsock = None;
    acceptor = None;
    monitor = None;
    workers = [];
    closed_conns = 0;
    slow_disconnects = 0;
    reaped = 0;
    pings_sent = 0;
    stopping = false;
    crashed = false;
    on_status = None;
    m_connections;
    m_queue_depth;
    m_slow;
    m_hb_misses;
    m_rx_apply;
    m_queue_wait;
  }

let broker t = t.broker

let name t = t.name

let crashed t = t.crashed

let slow_disconnects t = t.slow_disconnects

let reaped t = t.reaped

let cursor t =
  match Broker.wal t.broker with
  | Some j -> Journal.ops_logged j
  | None -> t.plain_cursor

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_conn_gauge t n =
  Option.iter (fun g -> Metrics.Gauge.set g (float_of_int n)) t.m_connections

(* {1 Outbound queues} *)

(* Declare a connection dead and wake everything parked on it: the
   writer (via cond broadcast), the reader (via shutdown -> EOF), and
   a writer blocked inside send(2) on a full kernel buffer (shutdown
   fails the write). Safe under the broker lock — takes only the tx
   mutex. *)
let kill_conn cs =
  cs.alive <- false;
  Transport.shutdown_conn cs.conn;
  Mutex.lock cs.tx_mutex;
  Condition.broadcast cs.tx_cond;
  Mutex.unlock cs.tx_mutex

(* Enqueue one outbound frame. Never blocks: at [max_queue] queued
   frames the peer is a slow consumer and the policy is
   disconnect-and-let-replay-catch-up — the journal already holds
   everything the peer will have missed. *)
let enqueue t cs msg =
  if cs.alive then begin
    Mutex.lock cs.tx_mutex;
    let depth = Queue.length cs.txq + 1 in
    if depth > t.max_queue then begin
      Mutex.unlock cs.tx_mutex;
      t.slow_disconnects <- t.slow_disconnects + 1;
      Option.iter Metrics.Counter.incr t.m_slow;
      Log.warn (fun m ->
          m "conn %d (%s): slow consumer at %d queued frames, dropping" cs.id
            cs.peer t.max_queue);
      kill_conn cs
    end
    else begin
      Queue.push (msg, Clock.now_ns ()) cs.txq;
      Condition.signal cs.tx_cond;
      Mutex.unlock cs.tx_mutex;
      Option.iter
        (fun h -> Metrics.Histogram.observe h (float_of_int depth))
        t.m_queue_depth
    end
  end

(* Writer thread: drain the queue in order; exit once the connection
   is dead, or once it is stopping and the queue is flushed. *)
let tx_loop t cs =
  let rec loop () =
    Mutex.lock cs.tx_mutex;
    while Queue.is_empty cs.txq && cs.alive && not cs.tx_stop do
      Condition.wait cs.tx_cond cs.tx_mutex
    done;
    match Queue.take_opt cs.txq with
    | None ->
      (* stopping (flushed) or dead *)
      Mutex.unlock cs.tx_mutex
    | Some (msg, enq_ns) -> (
      Mutex.unlock cs.tx_mutex;
      Option.iter
        (fun h ->
          Metrics.Histogram.observe h
            (Int64.to_float (Int64.sub (Clock.now_ns ()) enq_ns)))
        t.m_queue_wait;
      match Transport.send cs.conn msg with
      | () ->
        cs.last_tx <- Transport.now_s ();
        loop ()
      | exception (Sys_error _ | Unix.Unix_error _) -> kill_conn cs)
  in
  loop ()

let stop_tx cs =
  Mutex.lock cs.tx_mutex;
  cs.tx_stop <- true;
  Condition.broadcast cs.tx_cond;
  Mutex.unlock cs.tx_mutex;
  match cs.tx_thread with
  | Some th ->
    cs.tx_thread <- None;
    (try Thread.join th with _ -> ())
  | None -> ()

(* One [Deliver] per (connection, event) even when several of the
   connection's subscriptions match: within one publish the same
   physical event reaches every matching handler consecutively, so a
   head check suffices. *)
let enqueue_delivery t cs (n : Notification.t) =
  let ev = n.Notification.event in
  match cs.pending with
  | (_, _, _, e) :: _ when e == ev -> ()
  | _ -> cs.pending <- (t.cur_cursor, 0, t.cur_origin, ev) :: cs.pending

let link_fate t cs =
  match t.faults with
  | None -> `Forward
  | Some f -> Fault.link_fate f ~src:0 ~dst:cs.id

(* Flush queued deliveries after a publish, applying the link-fault
   plan per frame. Delayed frames from the previous flush go out first
   (they are "late", not lost); the originating connection's queue is
   discarded unsent, as is any entry whose origin names the peer — the
   no-echo rule, by connection for the local hop and by origin name
   across hops and reconnects. Called under the lock. *)
let flush_deliveries ?(skip = -1) t =
  (* Captured once per flush, inside the publish's trace if one is
     open: every Deliver of this publish carries the same context, so
     a downstream peer's apply span parents under this hop's publish
     span. *)
  let ctx =
    match t.tracer with None -> None | Some tr -> Trace.context tr
  in
  Hashtbl.iter
    (fun _ cs ->
      let pending = List.rev cs.pending in
      cs.pending <- [];
      if cs.id = skip then ()
      else begin
        let echo (_, _, origin, _) = origin <> "" && String.equal origin cs.peer in
        let late = List.rev cs.delayed in
        cs.delayed <- [];
        List.iter
          (fun ((cur, idx, origin, event) as entry) ->
            (* A delayed frame belongs to an earlier publish; carrying
               this flush's context would parent it under the wrong
               span, so it travels context-free. *)
            if not (echo entry) then
              enqueue t cs
                (Transport.Deliver
                   { cursor = cur; idx; replay = false; origin; event;
                     ctx = None }))
          late;
        List.iter
          (fun ((cur, idx, origin, event) as entry) ->
            if echo entry then ()
            else
              match link_fate t cs with
              | `Forward ->
                enqueue t cs
                  (Transport.Deliver
                     { cursor = cur; idx; replay = false; origin; event; ctx })
              | `Duplicate ->
                let d =
                  Transport.Deliver
                    { cursor = cur; idx; replay = false; origin; event; ctx }
                in
                enqueue t cs d;
                enqueue t cs d
              | `Drop -> ()
              | `Delay -> cs.delayed <- entry :: cs.delayed)
          pending
      end)
    t.conns

(* Publish a batch of events through the broker, one journal record
   per event (so cursors are dense and the acknowledgement can name
   the whole range), then flush deliveries. Returns the cursor of the
   first record. Called under the lock. *)
let publish_locked ?(skip = -1) ?origin t events =
  let origin = match origin with Some o -> o | None -> t.name in
  let first = cursor t in
  (try
     Array.iter
       (fun ev ->
         t.cur_cursor <- cursor t;
         t.cur_origin <- origin;
         ignore (Broker.publish t.broker ev);
         if Broker.wal t.broker = None then
           t.plain_cursor <- t.plain_cursor + 1)
       events
   with Fault.Crashed _ as e ->
     t.crashed <- true;
     t.stopping <- true;
     raise e);
  flush_deliveries ~skip t;
  first

(* Run [f] under the server's tracer, adopting [ctx] when one arrived
   on the wire ([via] names the hop peer whose span is the parent).
   Must be called with the broker lock held — the lock is what makes
   "one publish = one causal tree" hold for a shared tracer. *)
let traced_locked t ~name ~via ctx f =
  match t.tracer with
  | None -> f ()
  | Some tr -> Trace.with_remote_trace tr ~name ~origin:via ctx f

let publish ?origin ?(via = "") ?(ctx = None) t events =
  with_lock t (fun () ->
      traced_locked t ~name:"net.publish" ~via ctx (fun () ->
          publish_locked ?origin t events))

let connections t = with_lock t (fun () -> Hashtbl.length t.conns)

(* {1 Introspection} *)

(* This node's own status row. Takes the lock (peer snapshot), so
   callers must not already hold it. *)
let status t =
  let now = Transport.now_s () in
  let peers =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun _ cs acc ->
            {
              Transport.ps_name = cs.peer;
              ps_state = (if cs.alive then "up" else "dead");
              ps_queue =
                (Mutex.lock cs.tx_mutex;
                 let n = Queue.length cs.txq in
                 Mutex.unlock cs.tx_mutex;
                 n);
              ps_last_rx_s = now -. cs.last_rx;
            }
            :: acc)
          t.conns [])
  in
  let peers =
    List.sort (fun a b -> compare a.Transport.ps_name b.Transport.ps_name) peers
  in
  {
    Transport.ns_node = t.name;
    ns_role = t.role;
    ns_cursor = (if Broker.wal t.broker = None then -1 else cursor t);
    ns_connections = List.length peers;
    ns_uptime_s = now -. t.started_s;
    ns_peers = peers;
    ns_counters =
      (match t.metrics with Some m -> Metrics.counters m | None -> []);
  }

let set_on_status t f = t.on_status <- Some f

let statuses t =
  match t.on_status with Some f -> f () | None -> [ status t ]

(* {1 Connection protocol} *)

let drop_conn t cs =
  with_lock t (fun () ->
      if Hashtbl.mem t.conns cs.id then begin
        Hashtbl.remove t.conns cs.id;
        t.closed_conns <- t.closed_conns + 1;
        set_conn_gauge t (Hashtbl.length t.conns);
        Hashtbl.iter
          (fun _ (sid, _, _) -> ignore (Broker.unsubscribe t.broker sid))
          cs.subs;
        Hashtbl.reset cs.subs
      end);
  (* Graceful writer stop first: queued frames (a handshake Reject,
     final deliveries) drain before the socket goes down. A peer that
     stopped reading cannot park this join — its writer either fails
     fast (peer closed) or was already killed by the slow-consumer or
     heartbeat policy, and a killed writer's sends fail instantly. *)
  stop_tx cs;
  kill_conn cs;
  Transport.close_conn cs.conn

let handle_subscribe t cs ~token ~subscriber ~body =
  let outcome =
    with_lock t (fun () ->
        if Hashtbl.mem cs.subs token then `Dup (cursor t)
        else
          match Lang.parse_profile (Broker.schema t.broker) body with
          | Error reason -> `Nack reason
          | Ok profile ->
            let sid =
              Broker.subscribe t.broker ~subscriber ~profile
                (enqueue_delivery t cs)
            in
            Hashtbl.replace cs.subs token (sid, profile, body);
            `New (cursor t))
  in
  (* The relay hook runs before the acknowledgement: once the
     subscriber sees its Ack, the whole upstream path has the
     profile. *)
  (match outcome with
  | `New _ ->
    Option.iter
      (fun f -> f ~conn_id:cs.id ~token ~subscriber ~body)
      t.hooks.on_subscribe
  | `Dup _ | `Nack _ -> ());
  match outcome with
  | `New c | `Dup c -> enqueue t cs (Transport.Ack { token; cursor = c; count = 0 })
  | `Nack reason -> enqueue t cs (Transport.Nack { token; reason })

let handle_unsubscribe t cs ~token =
  let removed =
    with_lock t (fun () ->
        match Hashtbl.find_opt cs.subs token with
        | Some (sid, _, body) ->
          ignore (Broker.unsubscribe t.broker sid);
          Hashtbl.remove cs.subs token;
          Some (body, cursor t)
        | None -> None)
  in
  (match removed with
  | Some (body, _) ->
    Option.iter (fun f -> f ~conn_id:cs.id ~token ~body) t.hooks.on_unsubscribe
  | None -> ());
  let c = match removed with Some (_, c) -> c | None -> with_lock t (fun () -> cursor t) in
  enqueue t cs (Transport.Ack { token; cursor = c; count = 0 })

let handle_publish t cs ~token ~origin ~events ~ctx =
  let origin = if origin = "" then cs.peer else origin in
  let t0 = Clock.now_ns () in
  match
    with_lock t (fun () ->
        (* The hop span opens inside the lock so a shared tracer sees
           one causal tree per publish; [fwd_ctx] is captured while it
           is open, so the relay hook's upstream forward parents under
           this hop rather than under the original leaf span. *)
        traced_locked t ~name:"net.rx_publish" ~via:cs.peer ctx (fun () ->
            let first = publish_locked ~skip:cs.id ~origin t events in
            let fwd_ctx =
              match t.tracer with
              | None -> ctx
              | Some tr -> Trace.context tr
            in
            (first, fwd_ctx)))
  with
  | first, fwd_ctx ->
    Option.iter
      (fun h ->
        Metrics.Histogram.observe h
          (Int64.to_float (Int64.sub (Clock.now_ns ()) t0)))
      t.m_rx_apply;
    Option.iter
      (fun f -> f ~conn_id:cs.id ~origin ~ctx:fwd_ctx events)
      t.hooks.on_accept;
    enqueue t cs
      (Transport.Ack
         {
           token;
           cursor = (if Broker.wal t.broker = None then -1 else first);
           count = Array.length events;
         })
  | exception Fault.Crashed _ ->
    (* Simulated process death: the record may or may not be
       durable; the client learns from the dropped connection and
       recovers through reconnect + replay. *)
    ()

(* Catch-up: re-deliver journaled publishes after the client's cursor,
   filtered through this connection's own subscriptions. Never
   link-faulted — replay is the recovery path the faults are recovered
   {e through}. *)
(* Replay bypasses the bounded outbound queue: a catch-up backlog can
   legitimately exceed [max_queue], and the queue bound exists to shed
   peers that stopped reading — a replaying peer is by definition
   reading. The frame set is snapshotted under the broker lock, then
   written directly from the serve thread that accepted the [Replay]
   request, with the kernel socket buffer as flow control: a slow
   reader throttles only its own catch-up, never the broker lock or
   other peers. Interleaving with concurrent live deliveries is safe —
   sends are whole-frame serialized per connection and receivers
   deduplicate by (cursor, idx). *)
let handle_replay t cs ~since ~ctx =
  let frames =
    with_lock t (fun () ->
        (* Replay deliveries carry no context of their own: they are
           catch-up copies of old publishes, and parenting them under
           the requester's replay span would invert causality. The
           service itself still records a hop span adopted from the
           requester. *)
        traced_locked t ~name:"net.replay" ~via:cs.peer ctx (fun () ->
            match Broker.wal t.broker with
            | None ->
              [ Transport.Replay_done { cursor = cursor t; complete = false } ]
            | Some j ->
              let batches, complete = Journal.events_since j ~since in
              let schema = Broker.schema t.broker in
              let acc = ref [] in
              List.iter
                (fun (opi, events) ->
                  Array.iteri
                    (fun idx event ->
                      let matches =
                        Hashtbl.fold
                          (fun _ (_, profile, _) m ->
                            m || Profile.matches schema profile event)
                          cs.subs false
                      in
                      if matches then
                        acc :=
                          Transport.Deliver
                            {
                              cursor = opi;
                              idx;
                              replay = true;
                              origin = "";
                              event;
                              ctx = None;
                            }
                          :: !acc)
                    events)
                batches;
              List.rev
                (Transport.Replay_done { cursor = cursor t; complete } :: !acc)))
  in
  try
    List.iter
      (fun m ->
        if cs.alive then begin
          Transport.send cs.conn m;
          cs.last_tx <- Transport.now_s ()
        end)
      frames
  with Sys_error _ | Unix.Unix_error _ -> kill_conn cs

let serve_conn t cs =
  let schema = Broker.schema t.broker in
  let rec loop () =
    if t.stopping || not cs.alive then ()
    else
      match Transport.recv cs.conn schema with
      | Error `Eof -> ()
      | Error (`Corrupt msg) ->
        (* A torn frame, checksum failure, or hostile length kills the
           connection — the stream is unrecoverable past a framing
           error — but never the server. *)
        Log.warn (fun m -> m "conn %d (%s): corrupt frame: %s" cs.id cs.peer msg);
        enqueue t cs (Transport.Reject { reason = "corrupt frame: " ^ msg })
      | Ok msg -> (
        cs.last_rx <- Transport.now_s ();
        match msg with
        | Transport.Bye -> ()
        | Transport.Ping { token } ->
          enqueue t cs (Transport.Pong { token });
          loop ()
        | Transport.Pong _ -> loop ()
        | Transport.Subscribe { token; subscriber; body } ->
          handle_subscribe t cs ~token ~subscriber ~body;
          loop ()
        | Transport.Unsubscribe { token } ->
          handle_unsubscribe t cs ~token;
          loop ()
        | Transport.Publish { token; origin; events; ctx } ->
          handle_publish t cs ~token ~origin ~events ~ctx;
          if t.stopping then () else loop ()
        | Transport.Replay { since; ctx } ->
          handle_replay t cs ~since ~ctx;
          loop ()
        | Transport.Status_req { token } ->
          enqueue t cs (Transport.Status { token; nodes = statuses t });
          loop ()
        | Transport.Hello _ | Transport.Welcome _ | Transport.Reject _
        | Transport.Ack _ | Transport.Nack _ | Transport.Deliver _
        | Transport.Replay_done _ | Transport.Status _ ->
          enqueue t cs
            (Transport.Nack
               {
                 token = -1;
                 reason = "unexpected " ^ Transport.message_name msg;
               });
          loop ())
  in
  let handshake () =
    match Transport.recv cs.conn schema with
    | Ok (Transport.Hello { version; fingerprint; name }) ->
      if version <> Transport.protocol_version then
        enqueue t cs
          (Transport.Reject
             {
               reason =
                 Printf.sprintf "protocol version %d, expected %d" version
                   Transport.protocol_version;
             })
      else begin
        let own = Codec.schema_fingerprint schema in
        if not (String.equal fingerprint own) then
          enqueue t cs (Transport.Reject { reason = "schema fingerprint mismatch" })
        else begin
          cs.peer <- name;
          cs.last_rx <- Transport.now_s ();
          with_lock t (fun () ->
              enqueue t cs
                (Transport.Welcome
                   {
                     version = Transport.protocol_version;
                     fingerprint = own;
                     cursor = cursor t;
                     name = t.name;
                   }));
          loop ()
        end
      end
    | Ok _ | Error _ ->
      enqueue t cs (Transport.Reject { reason = "expected hello" })
  in
  (try handshake () with Sys_error _ | Unix.Unix_error _ -> ());
  drop_conn t cs

(* {1 Liveness monitor} *)

(* Reap connections that have received nothing for a whole heartbeat
   deadline (half-dead peers — a silently vanished TCP endpoint never
   sends FIN) and ping otherwise-idle ones. Runs on its own thread;
   pings go through the bounded queues, so a monitor tick never
   blocks. *)
let monitor_tick t hb =
  let now = Transport.now_s () in
  let conns =
    with_lock t (fun () -> Hashtbl.fold (fun _ cs acc -> cs :: acc) t.conns [])
  in
  List.iter
    (fun cs ->
      if cs.alive && cs.peer <> "" then begin
        if now -. cs.last_rx > Transport.deadline_of hb then begin
          t.reaped <- t.reaped + 1;
          Option.iter Metrics.Counter.incr t.m_hb_misses;
          Log.warn (fun m ->
              m "conn %d (%s): heartbeat deadline exceeded, reaping" cs.id
                cs.peer);
          kill_conn cs
        end
        else if now -. cs.last_rx > hb.Transport.period_s
                && now -. cs.last_tx > hb.Transport.period_s
        then begin
          t.pings_sent <- t.pings_sent + 1;
          enqueue t cs (Transport.Ping { token = t.pings_sent })
        end
      end)
    conns

let start_monitor t =
  match (t.monitor, t.heartbeat) with
  | Some _, _ | _, None -> ()
  | None, Some hb ->
    t.monitor <-
      Some
        (Thread.create
           (fun () ->
             while not t.stopping do
               Thread.delay t.tick_s;
               if not t.stopping then monitor_tick t hb
             done)
           ())

let stop_monitor t =
  match t.monitor with
  | Some th ->
    t.monitor <- None;
    (try Thread.join th with _ -> ())
  | None -> ()

(* {1 Lifecycle} *)

let ensure_listening t =
  match t.lsock with
  | Some _ -> ()
  | None -> t.lsock <- Some (Transport.listen t.addr)

let accept_one t sock =
  let conn = Transport.accept ~seed:t.seed ~max_frame:t.max_frame sock in
  (match t.sndbuf with
  | Some n -> (
    try Unix.setsockopt_int (Transport.conn_fd conn) Unix.SO_SNDBUF n
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | None -> ());
  let now = Transport.now_s () in
  let cs =
    with_lock t (fun () ->
        let id = t.next_conn in
        t.next_conn <- id + 1;
        let cs =
          {
            id;
            conn;
            peer = "";
            subs = Hashtbl.create 4;
            pending = [];
            delayed = [];
            alive = true;
            txq = Queue.create ();
            tx_mutex = Mutex.create ();
            tx_cond = Condition.create ();
            tx_stop = false;
            tx_thread = None;
            last_rx = now;
            last_tx = now;
          }
        in
        Hashtbl.replace t.conns id cs;
        set_conn_gauge t (Hashtbl.length t.conns);
        cs)
  in
  cs.tx_thread <- Some (Thread.create (fun () -> tx_loop t cs) ());
  let th = Thread.create (fun () -> serve_conn t cs) () in
  t.workers <- th :: t.workers

let close_listener t =
  match t.lsock with
  | Some sock ->
    t.lsock <- None;
    (* Like connections: a thread blocked in accept(2) is only woken
       by shutdown, not by close. *)
    (try Unix.shutdown sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (match t.addr with
    | Transport.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Transport.Tcp _ -> ())
  | None -> ()

let teardown t =
  (* [serve ~connections:n] reaches here without {!stop}: the monitor
     loop watches [stopping], so it must be raised before the join. *)
  t.stopping <- true;
  close_listener t;
  stop_monitor t;
  let conns = with_lock t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []) in
  (* Shut down (not close): wake each worker out of its blocking read
     with EOF; the worker's own exit path closes the descriptor. *)
  List.iter kill_conn conns;
  List.iter (fun th -> try Thread.join th with _ -> ()) t.workers;
  t.workers <- [];
  Engine.await_swap (Broker.engine t.broker)

(* Run the accept loop on the calling thread. With [connections = n],
   accept exactly [n] connections and return once all of them have
   disconnected; with [0], loop until {!stop}. *)
let serve ?(connections = 0) t =
  ensure_listening t;
  start_monitor t;
  let sock = Option.get t.lsock in
  let accepted = ref 0 in
  (try
     while
       (not t.stopping) && (connections = 0 || !accepted < connections)
     do
       accept_one t sock;
       incr accepted
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* Wait for the accepted connections to finish before tearing down. *)
  List.iter (fun th -> try Thread.join th with _ -> ()) t.workers;
  t.workers <- [];
  teardown t

let start t =
  ensure_listening t;
  start_monitor t;
  let sock = Option.get t.lsock in
  t.acceptor <-
    Some
      (Thread.create
         (fun () ->
           try
             while not t.stopping do
               accept_one t sock
             done
           with Unix.Unix_error _ | Sys_error _ -> ())
         ())

let stop t =
  t.stopping <- true;
  (* Unblock the acceptor first so no new connection races teardown. *)
  close_listener t;
  (match t.acceptor with
  | Some th ->
    t.acceptor <- None;
    (try Thread.join th with _ -> ())
  | None -> ());
  teardown t
