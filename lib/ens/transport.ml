(* Wire transport for networked brokers: Codec frames over stream
   sockets. Every message is one seeded-FNV-checksummed, length-
   prefixed frame whose payload starts with a u8 tag; events travel in
   the same binary encoding the journal uses, so a socket peer and a
   WAL replay decode through identical code paths. *)

module Event = Genas_model.Event
module Schema = Genas_model.Schema

(* v3: Publish/Deliver/Replay carry an optional trace context, Welcome
   carries the server's node name, and the Status_req/Status pair was
   added. Old peers are rejected at the handshake version check. *)
let protocol_version = 3

(* Wall-independent seconds for deadlines and heartbeat bookkeeping:
   reads {!Genas_obs.Clock}, so tests can install a fake source and
   drive liveness deadlines deterministically. *)
let now_s () = Int64.to_float (Genas_obs.Clock.now_ns ()) /. 1e9

(* {1 Liveness} *)

type heartbeat = { period_s : float; misses : int }

let default_heartbeat = { period_s = 5.0; misses = 3 }

let heartbeat ?(period_s = default_heartbeat.period_s)
    ?(misses = default_heartbeat.misses) () =
  if not (period_s > 0.0) then
    invalid_arg "Transport.heartbeat: period must be positive";
  if misses < 1 then invalid_arg "Transport.heartbeat: misses must be >= 1";
  { period_s; misses }

let deadline_of { period_s; misses } = period_s *. float_of_int misses

(* {1 Addresses} *)

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected unix:PATH or tcp:HOST:PORT" s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" ->
      if rest = "" then Error "unix address: empty path"
      else Ok (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "tcp address %S: expected HOST:PORT" rest)
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "tcp address %S: bad host or port" rest)))
    | _ -> Error (Printf.sprintf "address scheme %S: expected unix or tcp" scheme))

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
        | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (ip, port)

(* {1 Messages} *)

(* A wire trace context: (trace id, parent span id) of the sender's
   active trace, adopted by the receiver so hop spans parent across
   the process boundary. *)
type ctx = (int * int) option

type peer_status = {
  ps_name : string;
  ps_state : string;
  ps_queue : int;
  ps_last_rx_s : float;
}

type node_status = {
  ns_node : string;
  ns_role : string;
  ns_cursor : int;
  ns_connections : int;
  ns_uptime_s : float;
  ns_peers : peer_status list;
  ns_counters : (string * int) list;
}

type message =
  | Hello of { version : int; fingerprint : string; name : string }
  | Welcome of {
      version : int;
      fingerprint : string;
      cursor : int;
      name : string;
    }
  | Reject of { reason : string }
  | Subscribe of { token : int; subscriber : string; body : string }
  | Unsubscribe of { token : int }
  | Publish of {
      token : int;
      origin : string;
      events : Event.t array;
      ctx : ctx;
    }
  | Ack of { token : int; cursor : int; count : int }
  | Nack of { token : int; reason : string }
  | Deliver of {
      cursor : int;
      idx : int;
      replay : bool;
      origin : string;
      event : Event.t;
      ctx : ctx;
    }
  | Replay of { since : int; ctx : ctx }
  | Replay_done of { cursor : int; complete : bool }
  | Bye
  | Ping of { token : int }
  | Pong of { token : int }
  | Status_req of { token : int }
  | Status of { token : int; nodes : node_status list }

let w_ctx b =
  Codec.w_option
    (fun b (tid, sid) ->
      Codec.w_int b tid;
      Codec.w_int b sid)
    b

let r_ctx r =
  Codec.r_option
    (fun r ->
      let tid = Codec.r_int r in
      let sid = Codec.r_int r in
      (tid, sid))
    r

let w_peer_status b p =
  Codec.w_string b p.ps_name;
  Codec.w_string b p.ps_state;
  Codec.w_int b p.ps_queue;
  Codec.w_float b p.ps_last_rx_s

let r_peer_status r =
  let ps_name = Codec.r_string r in
  let ps_state = Codec.r_string r in
  let ps_queue = Codec.r_int r in
  let ps_last_rx_s = Codec.r_float r in
  { ps_name; ps_state; ps_queue; ps_last_rx_s }

let w_node_status b n =
  Codec.w_string b n.ns_node;
  Codec.w_string b n.ns_role;
  Codec.w_int b n.ns_cursor;
  Codec.w_int b n.ns_connections;
  Codec.w_float b n.ns_uptime_s;
  Codec.w_list w_peer_status b n.ns_peers;
  Codec.w_list
    (fun b (k, v) ->
      Codec.w_string b k;
      Codec.w_int b v)
    b n.ns_counters

let r_node_status r =
  let ns_node = Codec.r_string r in
  let ns_role = Codec.r_string r in
  let ns_cursor = Codec.r_int r in
  let ns_connections = Codec.r_int r in
  let ns_uptime_s = Codec.r_float r in
  let ns_peers = Codec.r_list r_peer_status r in
  let ns_counters =
    Codec.r_list
      (fun r ->
        let k = Codec.r_string r in
        let v = Codec.r_int r in
        (k, v))
      r
  in
  { ns_node; ns_role; ns_cursor; ns_connections; ns_uptime_s; ns_peers;
    ns_counters }

let encode_message msg =
  let b = Buffer.create 64 in
  (match msg with
  | Hello { version; fingerprint; name } ->
    Codec.w_u8 b 0;
    Codec.w_int b version;
    Codec.w_string b fingerprint;
    Codec.w_string b name
  | Welcome { version; fingerprint; cursor; name } ->
    Codec.w_u8 b 1;
    Codec.w_int b version;
    Codec.w_string b fingerprint;
    Codec.w_int b cursor;
    Codec.w_string b name
  | Reject { reason } ->
    Codec.w_u8 b 2;
    Codec.w_string b reason
  | Subscribe { token; subscriber; body } ->
    Codec.w_u8 b 3;
    Codec.w_int b token;
    Codec.w_string b subscriber;
    Codec.w_string b body
  | Unsubscribe { token } ->
    Codec.w_u8 b 4;
    Codec.w_int b token
  | Publish { token; origin; events; ctx } ->
    Codec.w_u8 b 5;
    Codec.w_int b token;
    Codec.w_string b origin;
    Codec.w_array Codec.w_event b events;
    w_ctx b ctx
  | Ack { token; cursor; count } ->
    Codec.w_u8 b 6;
    Codec.w_int b token;
    Codec.w_int b cursor;
    Codec.w_int b count
  | Nack { token; reason } ->
    Codec.w_u8 b 7;
    Codec.w_int b token;
    Codec.w_string b reason
  | Deliver { cursor; idx; replay; origin; event; ctx } ->
    Codec.w_u8 b 8;
    Codec.w_int b cursor;
    Codec.w_int b idx;
    Codec.w_bool b replay;
    Codec.w_string b origin;
    Codec.w_event b event;
    w_ctx b ctx
  | Replay { since; ctx } ->
    Codec.w_u8 b 9;
    Codec.w_int b since;
    w_ctx b ctx
  | Replay_done { cursor; complete } ->
    Codec.w_u8 b 10;
    Codec.w_int b cursor;
    Codec.w_bool b complete
  | Bye -> Codec.w_u8 b 11
  | Ping { token } ->
    Codec.w_u8 b 12;
    Codec.w_int b token
  | Pong { token } ->
    Codec.w_u8 b 13;
    Codec.w_int b token
  | Status_req { token } ->
    Codec.w_u8 b 14;
    Codec.w_int b token
  | Status { token; nodes } ->
    Codec.w_u8 b 15;
    Codec.w_int b token;
    Codec.w_list w_node_status b nodes);
  Buffer.contents b

let decode_message schema payload =
  let r = Codec.reader payload in
  let msg =
    match Codec.r_u8 r with
    | 0 ->
      let version = Codec.r_int r in
      let fingerprint = Codec.r_string r in
      let name = Codec.r_string r in
      Hello { version; fingerprint; name }
    | 1 ->
      let version = Codec.r_int r in
      let fingerprint = Codec.r_string r in
      let cursor = Codec.r_int r in
      let name = Codec.r_string r in
      Welcome { version; fingerprint; cursor; name }
    | 2 -> Reject { reason = Codec.r_string r }
    | 3 ->
      let token = Codec.r_int r in
      let subscriber = Codec.r_string r in
      let body = Codec.r_string r in
      Subscribe { token; subscriber; body }
    | 4 -> Unsubscribe { token = Codec.r_int r }
    | 5 ->
      let token = Codec.r_int r in
      let origin = Codec.r_string r in
      let events = Codec.r_array (Codec.r_event schema) r in
      let ctx = r_ctx r in
      Publish { token; origin; events; ctx }
    | 6 ->
      let token = Codec.r_int r in
      let cursor = Codec.r_int r in
      let count = Codec.r_int r in
      Ack { token; cursor; count }
    | 7 ->
      let token = Codec.r_int r in
      let reason = Codec.r_string r in
      Nack { token; reason }
    | 8 ->
      let cursor = Codec.r_int r in
      let idx = Codec.r_int r in
      let replay = Codec.r_bool r in
      let origin = Codec.r_string r in
      let event = Codec.r_event schema r in
      let ctx = r_ctx r in
      Deliver { cursor; idx; replay; origin; event; ctx }
    | 9 ->
      let since = Codec.r_int r in
      let ctx = r_ctx r in
      Replay { since; ctx }
    | 10 ->
      let cursor = Codec.r_int r in
      let complete = Codec.r_bool r in
      Replay_done { cursor; complete }
    | 11 -> Bye
    | 12 -> Ping { token = Codec.r_int r }
    | 13 -> Pong { token = Codec.r_int r }
    | 14 -> Status_req { token = Codec.r_int r }
    | 15 ->
      let token = Codec.r_int r in
      let nodes = Codec.r_list r_node_status r in
      Status { token; nodes }
    | t -> raise (Codec.Corrupt (Printf.sprintf "bad message tag %d" t))
  in
  Codec.r_end r;
  msg

let message_name = function
  | Hello _ -> "hello"
  | Welcome _ -> "welcome"
  | Reject _ -> "reject"
  | Subscribe _ -> "subscribe"
  | Unsubscribe _ -> "unsubscribe"
  | Publish _ -> "publish"
  | Ack _ -> "ack"
  | Nack _ -> "nack"
  | Deliver _ -> "deliver"
  | Replay _ -> "replay"
  | Replay_done _ -> "replay-done"
  | Bye -> "bye"
  | Ping _ -> "ping"
  | Pong _ -> "pong"
  | Status_req _ -> "status-req"
  | Status _ -> "status"

(* {1 Connections} *)

(* The checksum seed doubles as a cheap wire-format guard: both ends
   must agree on it or every frame fails its checksum. *)
let default_seed = 0x7e75eed

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  seed : int;
  max_frame : int;
  send_mutex : Mutex.t;
      (* deliveries fan out from whichever connection's thread
         published, so writes to one peer interleave without this *)
}

let conn_of_fd ?(seed = default_seed) ?(max_frame = Codec.default_max_frame) fd
    =
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    seed;
    max_frame;
    send_mutex = Mutex.create ();
  }

let conn_fd c = c.fd

let send c msg =
  let framed = Codec.frame ~seed:c.seed (encode_message msg) in
  Mutex.lock c.send_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.send_mutex)
    (fun () ->
      output_string c.oc framed;
      flush c.oc)

let recv c schema =
  match Codec.read_frame ~max_frame:c.max_frame ~seed:c.seed c.ic with
  | Error _ as e -> e
  | exception Sys_blocked_io ->
    (* A kernel receive deadline (SO_RCVTIMEO) expired: the channel
       layer surfaces the read's EAGAIN as [Sys_blocked_io]. Report it
       as [`Eof] — the handshake (the only caller that arms the
       deadline) abandons the connection either way. *)
    Error `Eof
  | Ok payload -> (
    match decode_message schema payload with
    | msg -> Ok msg
    | exception Codec.Corrupt m -> Error (`Corrupt m))

(* Kernel-level receive deadline: with a timeout set, a blocked read
   fails with EAGAIN, which {!recv} reports as [`Eof]. Used around the
   handshake, where the connection is abandoned on timeout anyway —
   never mid-stream, where a timed-out partial read would desync the
   frame boundary. *)
let set_recv_timeout c = function
  | Some s when s > 0.0 -> (
    try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO s
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | _ -> (
    try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO 0.0
    with Unix.Unix_error _ | Invalid_argument _ -> ())

(* Closing an fd does not wake a thread already blocked in read(2);
   shutdown does, with EOF. Always shut down before joining a thread
   that may be parked in {!recv}. No pre-flush: {!send} flushes every
   frame, so the channel buffer only holds bytes mid-[send] — and
   flushing here would block on the full kernel buffer of exactly the
   stalled peer this is called to get rid of. *)
let shutdown_conn c =
  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let close_conn c =
  (try flush c.oc with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* {1 Listening and dialing} *)

let listen ?(backlog = 16) addr =
  let sock =
    match addr with
    | Unix_sock path ->
      if Sys.file_exists path then Unix.unlink path;
      Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Tcp _ ->
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      s
  in
  (try Unix.bind sock (sockaddr_of addr)
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock backlog;
  sock

let accept ?seed ?max_frame sock =
  let fd, _ = Unix.accept sock in
  conn_of_fd ?seed ?max_frame fd

let dial ?seed ?max_frame addr =
  let domain =
    match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     Unix.close fd;
     raise e);
  conn_of_fd ?seed ?max_frame fd
