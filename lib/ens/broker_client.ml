(* A downstream broker node speaking the Codec wire protocol.

   The client owns a full local broker holding every local
   subscription; what it forwards upstream is only the covering-
   minimal root set of its own lattice (the PR-6 aggregation applied
   across the link, per the paper's covering-based propagation): a
   subscription covered by an already-forwarded profile costs zero
   wire traffic, and a newly-broader subscription retires the narrower
   ones it demotes. Delivered events are re-matched by the local
   broker, so absorbed subscriptions still receive exactly their own
   matches.

   Exactly-once local application over at-least-once transport: every
   [Deliver] carries the journal cursor of its publish record; applied
   (cursor, idx) pairs are remembered and duplicates (link faults,
   replay overlap) dropped. [complete_to] tracks the cursor up to
   which this client is known complete — advanced only at clean
   protocol points (fresh connect, replay completion) — and is the
   [since] sent on catch-up, so anything a fault swallowed is
   recovered by replay and deduplicated on arrival. *)

module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Lang = Genas_profile.Lang
module Lattice = Genas_profile.Lattice

type sub = {
  token : int;
  subscriber : string;
  body : string;
  sid : Broker.sub_id;
}

type inbox_entry = Msg of Transport.message | Closed of string

type t = {
  schema : Schema.t;
  name : string;
  addr : Transport.addr;
  seed : int;
  max_frame : int;
  local : Broker.t;
  lat : Lattice.t;
  subs : (int, sub) Hashtbl.t;
  forwarded : (int, unit) Hashtbl.t;
  applied : (int * int, unit) Hashtbl.t;
  mutable complete_to : int;
  mutable next_token : int;
  mutable conn : Transport.conn option;
  mutable rx : Thread.t option;
  inbox : inbox_entry Queue.t;
  inbox_mutex : Mutex.t;
  inbox_cond : Condition.t;
  mutable applied_total : int;
  mutable duplicates : int;
  mutable wire_subscribes : int;
  mutable wire_unsubscribes : int;
}

let local t = t.local

let name t = t.name

let connected t = t.conn <> None

let complete_to t = t.complete_to

let applied_total t = t.applied_total

let duplicates_dropped t = t.duplicates

let wire_subscribes t = t.wire_subscribes

let wire_unsubscribes t = t.wire_unsubscribes

let forwarded_tokens t =
  Hashtbl.fold (fun tok () acc -> tok :: acc) t.forwarded []
  |> List.sort Int.compare

(* {1 Inbox} *)

let inbox_push t entry =
  Mutex.lock t.inbox_mutex;
  Queue.push entry t.inbox;
  Condition.signal t.inbox_cond;
  Mutex.unlock t.inbox_mutex

let inbox_pop_opt t =
  Mutex.lock t.inbox_mutex;
  let e = Queue.take_opt t.inbox in
  Mutex.unlock t.inbox_mutex;
  e

(* Blocking pop: safe because the receiver thread always terminates
   the stream with [Closed] when the connection dies. *)
let inbox_pop t =
  Mutex.lock t.inbox_mutex;
  while Queue.is_empty t.inbox do
    Condition.wait t.inbox_cond t.inbox_mutex
  done;
  let e = Queue.pop t.inbox in
  Mutex.unlock t.inbox_mutex;
  e

let spawn_rx t conn =
  t.rx <-
    Some
      (Thread.create
         (fun () ->
           let rec loop () =
             match Transport.recv conn t.schema with
             | Ok msg ->
               inbox_push t (Msg msg);
               if msg <> Transport.Bye then loop ()
             | Error `Eof -> inbox_push t (Closed "connection closed")
             | Error (`Corrupt msg) -> inbox_push t (Closed ("corrupt frame: " ^ msg))
           in
           loop ())
         ())

(* {1 Delivery application} *)

let apply_deliver t ~cursor ~idx event =
  let duplicate = cursor >= 0 && Hashtbl.mem t.applied (cursor, idx) in
  if duplicate then begin
    t.duplicates <- t.duplicates + 1;
    false
  end
  else begin
    if cursor >= 0 then Hashtbl.replace t.applied (cursor, idx) ();
    (* Local re-matching delivers to exactly the local subscriptions
       the event satisfies — including ones absorbed below a forwarded
       covering profile. *)
    ignore (Broker.publish t.local event);
    t.applied_total <- t.applied_total + 1;
    true
  end

let handle_async t = function
  | Transport.Deliver { cursor; idx; event; replay = _ } ->
    ignore (apply_deliver t ~cursor ~idx event)
  | _ -> ()

(* Drain everything already queued without blocking; returns how many
   deliveries were applied. *)
let drain t =
  let applied = ref 0 in
  let rec loop () =
    match inbox_pop_opt t with
    | None -> ()
    | Some (Closed _) -> t.conn <- None
    | Some (Msg (Transport.Deliver { cursor; idx; event; replay = _ })) ->
      if apply_deliver t ~cursor ~idx event then incr applied;
      loop ()
    | Some (Msg _) -> loop ()
  in
  loop ();
  !applied

(* Busy-poll the inbox until [n] deliveries were applied by this call
   or [timeout] elapses. *)
let await_deliveries ?(timeout = 5.0) t n =
  let deadline = Unix.gettimeofday () +. timeout in
  let applied = ref 0 in
  while !applied < n && Unix.gettimeofday () < deadline do
    applied := !applied + drain t;
    if !applied < n then Thread.yield ()
  done;
  !applied

(* {1 Requests} *)

let send t msg =
  match t.conn with
  | None -> Error "not connected"
  | Some conn -> (
    try
      Transport.send conn msg;
      Ok ()
    with Sys_error _ | Unix.Unix_error _ ->
      t.conn <- None;
      Error "connection lost")

let await_ack t token =
  let rec loop () =
    match inbox_pop t with
    | Closed reason ->
      t.conn <- None;
      Error reason
    | Msg (Transport.Ack { token = tk; cursor; count }) when tk = token ->
      Ok (cursor, count)
    | Msg (Transport.Nack { token = tk; reason }) when tk = token ->
      Error reason
    | Msg (Transport.Reject { reason }) ->
      t.conn <- None;
      Error reason
    | Msg m ->
      handle_async t m;
      loop ()
  in
  loop ()

let request t msg ~token =
  match send t msg with Error e -> Error e | Ok () -> await_ack t token

(* {1 Covering-gated forwarding} *)

(* Forward exactly the covering-minimal roots of the local lattice.
   New roots subscribe before retired ones unsubscribe, so upstream
   coverage never has a window. Disconnected, only the bookkeeping
   updates — {!reconnect} re-sends the whole forwarded set. *)
let sync_forwarded t =
  let target = Hashtbl.create 8 in
  List.iter (fun (tok, _) -> Hashtbl.replace target tok ()) (Lattice.minimal_cover t.lat);
  let to_add =
    Hashtbl.fold
      (fun tok () acc -> if Hashtbl.mem t.forwarded tok then acc else tok :: acc)
      target []
  and to_drop =
    Hashtbl.fold
      (fun tok () acc -> if Hashtbl.mem target tok then acc else tok :: acc)
      t.forwarded []
  in
  let err = ref None in
  let keep e = if !err = None then err := Some e in
  if connected t then begin
    List.iter
      (fun tok ->
        match Hashtbl.find_opt t.subs tok with
        | None -> ()
        | Some sub -> (
          t.wire_subscribes <- t.wire_subscribes + 1;
          match
            request t
              (Transport.Subscribe
                 { token = tok; subscriber = sub.subscriber; body = sub.body })
              ~token:tok
          with
          | Ok _ -> ()
          | Error e -> keep e))
      (List.sort Int.compare to_add);
    List.iter
      (fun tok ->
        t.wire_unsubscribes <- t.wire_unsubscribes + 1;
        match request t (Transport.Unsubscribe { token = tok }) ~token:tok with
        | Ok _ -> ()
        | Error e -> keep e)
      (List.sort Int.compare to_drop)
  end;
  Hashtbl.reset t.forwarded;
  Hashtbl.iter (fun tok () -> Hashtbl.replace t.forwarded tok ()) target;
  match !err with None -> Ok () | Some e -> Error e

(* {1 Lifecycle} *)

let handshake t conn =
  let fingerprint = Codec.schema_fingerprint t.schema in
  Transport.send conn
    (Transport.Hello
       { version = Transport.protocol_version; fingerprint; name = t.name });
  match Transport.recv conn t.schema with
  | Ok (Transport.Welcome { version = _; fingerprint = fp; cursor }) ->
    if String.equal fp fingerprint then Ok cursor
    else Error "server schema fingerprint mismatch"
  | Ok (Transport.Reject { reason }) -> Error reason
  | Ok m -> Error ("unexpected " ^ Transport.message_name m)
  | Error `Eof -> Error "connection closed during handshake"
  | Error (`Corrupt m) -> Error ("corrupt frame during handshake: " ^ m)

let connect ?(name = "client") ?(seed = Transport.default_seed)
    ?(max_frame = Codec.default_max_frame) schema addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match Transport.dial ~seed ~max_frame addr with
  | exception (Unix.Unix_error _ as e) ->
    Error (Printf.sprintf "dial %s: %s" (Transport.addr_to_string addr)
             (Printexc.to_string e))
  | conn -> (
    let t =
      {
        schema;
        name;
        addr;
        seed;
        max_frame;
        local = Broker.create schema;
        lat = Lattice.create schema;
        subs = Hashtbl.create 8;
        forwarded = Hashtbl.create 8;
        applied = Hashtbl.create 64;
        complete_to = -1;
        next_token = 1;
        conn = None;
        rx = None;
        inbox = Queue.create ();
        inbox_mutex = Mutex.create ();
        inbox_cond = Condition.create ();
        applied_total = 0;
        duplicates = 0;
        wire_subscribes = 0;
        wire_unsubscribes = 0;
      }
    in
    match handshake t conn with
    | Error e ->
      Transport.close_conn conn;
      Error e
    | Ok cursor ->
      (* Records before this point predate the client: it is complete
         up to them by definition. *)
      t.complete_to <- cursor - 1;
      t.conn <- Some conn;
      spawn_rx t conn;
      Ok t)

let join_rx t =
  match t.rx with
  | Some th ->
    t.rx <- None;
    (try Thread.join th with _ -> ())
  | None -> ()

let disconnect t =
  (match t.conn with
  | Some conn ->
    t.conn <- None;
    (try Transport.send conn Transport.Bye with Sys_error _ | Unix.Unix_error _ -> ());
    (* Wake the receiver out of its blocking read before joining it —
       merely closing the fd would leave it parked forever. *)
    Transport.shutdown_conn conn;
    join_rx t;
    Transport.close_conn conn
  | None -> join_rx t);
  Mutex.lock t.inbox_mutex;
  Queue.clear t.inbox;
  Mutex.unlock t.inbox_mutex

(* Redial after a disconnect, keeping every cursor and subscription:
   re-send the forwarded root set, then replay from [complete_to] with
   duplicates dropped by the applied set. *)
let reconnect t =
  disconnect t;
  match Transport.dial ~seed:t.seed ~max_frame:t.max_frame t.addr with
  | exception (Unix.Unix_error _ as e) ->
    Error (Printf.sprintf "dial %s: %s" (Transport.addr_to_string t.addr)
             (Printexc.to_string e))
  | conn -> (
    match handshake t conn with
    | Error e ->
      Transport.close_conn conn;
      Error e
    | Ok _cursor ->
      t.conn <- Some conn;
      spawn_rx t conn;
      let err = ref None in
      Hashtbl.iter
        (fun tok () ->
          match Hashtbl.find_opt t.subs tok with
          | None -> ()
          | Some sub -> (
            t.wire_subscribes <- t.wire_subscribes + 1;
            match
              request t
                (Transport.Subscribe
                   { token = tok; subscriber = sub.subscriber; body = sub.body })
                ~token:tok
            with
            | Ok _ -> ()
            | Error e -> if !err = None then err := Some e))
        t.forwarded;
      (match !err with None -> Ok () | Some e -> Error e))

let close t =
  disconnect t;
  Broker.close t.local

(* {1 Operations} *)

let subscribe t ?subscriber body handler =
  let subscriber =
    match subscriber with Some s -> s | None -> t.name
  in
  match Lang.parse_profile t.schema body with
  | Error e -> Error e
  | Ok profile ->
    let token = t.next_token in
    t.next_token <- token + 1;
    let sid = Broker.subscribe t.local ~subscriber ~profile handler in
    ignore (Lattice.add t.lat ~id:token profile);
    Hashtbl.replace t.subs token { token; subscriber; body; sid };
    (match sync_forwarded t with
    | Ok () -> Ok token
    | Error e -> Error e)

let unsubscribe t token =
  match Hashtbl.find_opt t.subs token with
  | None -> Error (Printf.sprintf "unknown subscription token %d" token)
  | Some sub ->
    ignore (Broker.unsubscribe t.local sub.sid);
    Hashtbl.remove t.subs token;
    ignore (Lattice.remove t.lat token);
    sync_forwarded t

let publish t event =
  (* Local delivery first — the origin node matches its own
     subscriptions directly, as {!Router.publish} does. *)
  let n = Broker.publish t.local event in
  let token = t.next_token in
  t.next_token <- token + 1;
  match
    request t (Transport.Publish { token; events = [| event |] }) ~token
  with
  | Error e -> Error e
  | Ok (cursor, count) ->
    (* Mark our own events applied: the server never echoes them back,
       but a later replay would — and the local broker already
       delivered them. *)
    if cursor >= 0 then
      for i = 0 to count - 1 do
        Hashtbl.replace t.applied (cursor + i, 0) ()
      done;
    Ok n

(* Catch-up replay from the last known-complete cursor. Returns
   [(applied, complete)]: newly applied events, and whether the server
   still retained the whole range ([false] = a snapshot discarded part
   of it; see docs/NETWORKING.md on resync). *)
let replay t =
  match send t (Transport.Replay { since = t.complete_to }) with
  | Error e -> Error e
  | Ok () ->
    let applied = ref 0 in
    let rec loop () =
      match inbox_pop t with
      | Closed reason ->
        t.conn <- None;
        Error reason
      | Msg (Transport.Deliver { cursor; idx; event; replay = _ }) ->
        if apply_deliver t ~cursor ~idx event then incr applied;
        loop ()
      | Msg (Transport.Replay_done { cursor; complete }) ->
        t.complete_to <- cursor - 1;
        Ok (!applied, complete)
      | Msg m ->
        handle_async t m;
        loop ()
    in
    loop ()
