(* A downstream broker node speaking the Codec wire protocol.

   The client owns a full local broker holding every local
   subscription; what it forwards upstream is only the covering-
   minimal root set of its own lattice (the PR-6 aggregation applied
   across the link, per the paper's covering-based propagation): a
   subscription covered by an already-forwarded profile costs zero
   wire traffic, and a newly-broader subscription retires the narrower
   ones it demotes. Delivered events are re-matched by the local
   broker, so absorbed subscriptions still receive exactly their own
   matches.

   Exactly-once local application over at-least-once transport: every
   [Deliver] carries the journal cursor of its publish record; applied
   (cursor, idx) pairs are remembered and duplicates (link faults,
   replay overlap) dropped. [complete_to] tracks the cursor up to
   which this client is known complete — advanced only at clean
   protocol points (fresh connect, replay completion) — and is the
   [since] sent on catch-up, so anything a fault swallowed is
   recovered by replay and deduplicated on arrival.

   Self-healing (docs/ROBUSTNESS.md): a ticker thread owns all
   time-driven behaviour — heartbeat pings on idle links, reaping a
   link silent past the heartbeat deadline, and auto-reconnect with
   capped exponential backoff + seeded jitter (a {!Supervise.policy}
   interpreted over the wall clock). Every request takes a deadline
   and surfaces [Error "timeout"] instead of parking forever.

   Threading rules, load-bearing: the ticker must never block — it
   broadcasts [inbox_cond] first each tick (deadline waiters depend on
   that wake-up) and takes [op_mutex] only by [try_lock]; the receiver
   thread never takes [op_mutex] (link teardown holds it while joining
   the receiver); and any inbox wait that can run {e on} the ticker
   thread polls instead of waiting on the condition it is itself
   responsible for signalling. *)

module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Profile = Genas_profile.Profile
module Lang = Genas_profile.Lang
module Lattice = Genas_profile.Lattice
module Prng = Genas_prng.Prng
module Metrics = Genas_obs.Metrics
module Trace = Genas_obs.Trace
module Clock = Genas_obs.Clock

let log_src = Logs.Src.create "genas.client" ~doc:"GENAS broker client"

module Log = (val Logs.src_log log_src)

type sub = {
  token : int;
  subscriber : string;
  body : string;
  sid : Broker.sub_id option;
      (* [None]: a relay-mirrored forward — upstream subscription
         only, no local handler (the relay's server delivers). *)
}

type inbox_entry = Msg of Transport.message | Closed of string

type redial = {
  policy : Supervise.policy;
  max_backoff_s : float;
  rng : Prng.t;
  mutable backoff_s : float;
  mutable next_at : float;
}

type t = {
  schema : Schema.t;
  name : string;
  addr : Transport.addr;
  seed : int;
  max_frame : int;
  deadline_s : float;
  heartbeat : Transport.heartbeat option;
  tick_s : float;
  auto_drain : bool;
  inbox_cap : int;
  tracer : Trace.t option;
  on_deliver :
    (cursor:int ->
    idx:int ->
    origin:string ->
    ctx:Transport.ctx ->
    Event.t ->
    unit)
    option;
  skip_origin : (string -> bool) option;
  local : Broker.t;
  owns_local : bool;
  lat : Lattice.t;
  subs : (int, sub) Hashtbl.t;
  forwarded : (int, unit) Hashtbl.t;
  applied : (int * int, unit) Hashtbl.t;
  outbox : (string * Event.t array * Transport.ctx) Queue.t;
      (* origin-tagged batches awaiting upstream acknowledgement; only
         grows while the upstream link is down (relay buffering) *)
  redial : redial option;
  mutable upstream : string;
      (* the server's node name, learned from Welcome: labels remote
         spans and status rows *)
  mutable complete_to : int;
  mutable next_token : int;
  op_mutex : Mutex.t;
  mutable conn : Transport.conn option;
  mutable rx : Thread.t option;
  mutable rx_paused : bool;
  mutable rx_dead : bool;
      (* receiver exited (EOF, corruption, overflow): the ticker must
         tear the link down even if nothing is draining the inbox *)
  mutable ticker : Thread.t option;
  mutable ticker_tid : int;
  mutable closing : bool;
  inbox : inbox_entry Queue.t;
  inbox_mutex : Mutex.t;
  inbox_cond : Condition.t;
  mutable last_rx : float;
  mutable last_tx : float;
  mutable hb_misses : int;
  mutable reconnects : int;
  mutable applied_total : int;
  mutable duplicates : int;
  mutable wire_subscribes : int;
  mutable wire_unsubscribes : int;
  m_state : Metrics.gauge option;
  m_hb_misses : Metrics.counter option;
  m_reconnects : Metrics.counter option;
  m_rx_apply : Metrics.histogram option;
}

let local t = t.local

let name t = t.name

let upstream t = t.upstream

let connected t = t.conn <> None

let complete_to t = t.complete_to

let applied_total t = t.applied_total

let duplicates_dropped t = t.duplicates

let wire_subscribes t = t.wire_subscribes

let wire_unsubscribes t = t.wire_unsubscribes

let heartbeat_misses t = t.hb_misses

let reconnects t = t.reconnects

let forwarded_tokens t =
  Hashtbl.fold (fun tok () acc -> tok :: acc) t.forwarded []
  |> List.sort Int.compare

let with_op t f =
  Mutex.lock t.op_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.op_mutex) f

let outbox_depth t = with_op t (fun () -> Queue.length t.outbox)

let set_state t v = Option.iter (fun g -> Metrics.Gauge.set g v) t.m_state

(* {1 Inbox} *)

let inbox_push t entry =
  Mutex.lock t.inbox_mutex;
  Queue.push entry t.inbox;
  Condition.broadcast t.inbox_cond;
  Mutex.unlock t.inbox_mutex

let inbox_pop_opt t =
  Mutex.lock t.inbox_mutex;
  let e = Queue.take_opt t.inbox in
  Mutex.unlock t.inbox_mutex;
  e

(* Pop with a deadline. Normal threads park on [inbox_cond] — woken by
   every receiver push and by the ticker each tick, so the deadline is
   checked at tick granularity without busy-waiting. The ticker thread
   itself cannot rely on those broadcasts (it is their source), so it
   polls. [None] means the deadline passed (or the client is
   closing). *)
let inbox_pop_deadline t ~deadline =
  let on_ticker = Thread.id (Thread.self ()) = t.ticker_tid in
  Mutex.lock t.inbox_mutex;
  let rec wait () =
    if not (Queue.is_empty t.inbox) then Queue.take_opt t.inbox
    else if t.closing || Transport.now_s () >= deadline then None
    else if on_ticker then begin
      Mutex.unlock t.inbox_mutex;
      Thread.delay (Float.min 0.005 t.tick_s);
      Mutex.lock t.inbox_mutex;
      wait ()
    end
    else begin
      Condition.wait t.inbox_cond t.inbox_mutex;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.inbox_mutex;
  r

let inbox_clear t =
  Mutex.lock t.inbox_mutex;
  Queue.clear t.inbox;
  Mutex.unlock t.inbox_mutex

(* {1 Receiver thread} *)

(* Liveness frames are handled here — [Ping] answered in place, [Pong]
   absorbed — so the inbox carries only protocol traffic. [rx_paused]
   is a chaos hook: a paused receiver stops reading between frames,
   filling the kernel buffers until the server's bounded queue trips
   its slow-consumer policy. *)
let spawn_rx t conn =
  t.rx_dead <- false;
  t.rx <-
    Some
      (Thread.create
         (fun () ->
           let rec loop () =
             while t.rx_paused && not t.closing do
               Thread.delay 0.005
             done;
             match Transport.recv conn t.schema with
             | Ok msg -> (
               t.last_rx <- Transport.now_s ();
               match msg with
               | Transport.Ping { token } ->
                 (try Transport.send conn (Transport.Pong { token })
                  with Sys_error _ | Unix.Unix_error _ -> ());
                 loop ()
               | Transport.Pong _ -> loop ()
               | Transport.Bye -> inbox_push t (Closed "server closed")
               | msg ->
                 let overflowed =
                   Mutex.lock t.inbox_mutex;
                   let ov = Queue.length t.inbox >= t.inbox_cap in
                   Queue.push
                     (if ov then Closed "inbox overflow" else Msg msg)
                     t.inbox;
                   Condition.broadcast t.inbox_cond;
                   Mutex.unlock t.inbox_mutex;
                   ov
                 in
                 if not overflowed then loop ())
             | Error `Eof -> inbox_push t (Closed "connection closed")
             | Error (`Corrupt m) ->
               inbox_push t (Closed ("corrupt frame: " ^ m))
           in
           loop ();
           t.rx_dead <- true)
         ())

let join_rx t =
  match t.rx with
  | Some th ->
    t.rx <- None;
    (try Thread.join th with _ -> ())
  | None -> ()

(* Tear the link down eagerly: shut the socket (waking a receiver
   parked in read(2)), join the receiver, close the descriptor, and
   arm the redial schedule. Assumes [op_mutex]. A send failure, a
   heartbeat reap, and a [Closed] inbox entry all land here — the
   receiver must never be left parked on a dead socket. *)
let drop_link_locked t =
  match t.conn with
  | None -> ()
  | Some conn ->
    t.conn <- None;
    t.rx_paused <- false;
    Transport.shutdown_conn conn;
    join_rx t;
    Transport.close_conn conn;
    t.rx_dead <- false;
    set_state t 0.0;
    (match t.redial with
    | Some r ->
      r.backoff_s <- Float.max 0.01 (r.policy.Supervise.backoff_ns /. 1e9);
      r.next_at <- Transport.now_s ()
    | None -> ())

let drop_link t = with_op t (fun () -> drop_link_locked t)

(* {1 Delivery application} *)

let apply_deliver t ~cursor ~idx ~origin ~ctx event =
  if
    origin <> ""
    && (match t.skip_origin with Some f -> f origin | None -> false)
  then false
  else begin
    let duplicate = cursor >= 0 && Hashtbl.mem t.applied (cursor, idx) in
    if duplicate then begin
      t.duplicates <- t.duplicates + 1;
      false
    end
    else begin
      if cursor >= 0 then Hashtbl.replace t.applied (cursor, idx) ();
      (* Local re-matching delivers to exactly the local subscriptions
         the event satisfies — including ones absorbed below a
         forwarded covering profile. *)
      let t0 = Clock.now_ns () in
      let deliver () =
        match t.on_deliver with
        | Some f -> f ~cursor ~idx ~origin ~ctx event
        | None -> ignore (Broker.publish t.local event)
      in
      (match t.tracer with
      | None -> deliver ()
      | Some tr ->
        (* The apply span adopts the Deliver frame's context, so this
           hop parents under the upstream's publish span. *)
        Trace.with_remote_trace tr ~name:"net.apply" ~origin:t.upstream ctx
          deliver);
      Option.iter
        (fun h ->
          Metrics.Histogram.observe h
            (Int64.to_float (Int64.sub (Clock.now_ns ()) t0)))
        t.m_rx_apply;
      t.applied_total <- t.applied_total + 1;
      true
    end
  end

let handle_async t = function
  | Transport.Deliver { cursor; idx; origin; event; ctx; replay = _ } ->
    ignore (apply_deliver t ~cursor ~idx ~origin ~ctx event)
  | _ -> ()

(* Drain everything already queued without blocking; returns how many
   deliveries were applied. Assumes [op_mutex]. *)
let drain_locked t =
  let applied = ref 0 in
  let rec loop () =
    match inbox_pop_opt t with
    | None -> ()
    | Some (Closed _) -> drop_link_locked t
    | Some
        (Msg (Transport.Deliver { cursor; idx; origin; event; ctx; replay = _ }))
      ->
      if apply_deliver t ~cursor ~idx ~origin ~ctx event then incr applied;
      loop ()
    | Some (Msg _) -> loop ()
  in
  loop ();
  !applied

let drain t = with_op t (fun () -> drain_locked t)

(* Event-driven wait: park on the inbox condition (signalled by every
   receiver push, broadcast by the ticker each tick) until [n]
   deliveries were applied by this call or [timeout] elapses. *)
let await_deliveries ?(timeout = 5.0) t n =
  let deadline = Transport.now_s () +. timeout in
  let applied = ref (drain t) in
  while
    !applied < n && (not t.closing) && Transport.now_s () < deadline
  do
    Mutex.lock t.inbox_mutex;
    if Queue.is_empty t.inbox && not t.closing then
      Condition.wait t.inbox_cond t.inbox_mutex;
    Mutex.unlock t.inbox_mutex;
    applied := !applied + drain t
  done;
  !applied

(* {1 Requests} *)

let send_locked t msg =
  match t.conn with
  | None -> Error "not connected"
  | Some conn -> (
    try
      Transport.send conn msg;
      t.last_tx <- Transport.now_s ();
      Ok ()
    with Sys_error _ | Unix.Unix_error _ ->
      drop_link_locked t;
      Error "connection lost")

(* Wait for the acknowledgement matching [token], applying asynchronous
   deliveries encountered on the way. On deadline the request fails
   with [Error "timeout"] but the link survives — a late Ack is simply
   dropped later as an unmatched token. *)
let await_ack_locked t token =
  let deadline = Transport.now_s () +. t.deadline_s in
  let rec loop () =
    match inbox_pop_deadline t ~deadline with
    | None -> Error "timeout"
    | Some (Closed reason) ->
      drop_link_locked t;
      Error reason
    | Some (Msg (Transport.Ack { token = tk; cursor; count })) when tk = token
      ->
      Ok (cursor, count)
    | Some (Msg (Transport.Nack { token = tk; reason })) when tk = token ->
      Error reason
    | Some (Msg (Transport.Reject { reason })) ->
      drop_link_locked t;
      Error reason
    | Some (Msg m) ->
      handle_async t m;
      loop ()
  in
  loop ()

let request_locked t msg ~token =
  match send_locked t msg with
  | Error e -> Error e
  | Ok () -> await_ack_locked t token

(* {1 Covering-gated forwarding} *)

(* Forward exactly the covering-minimal roots of the local lattice.
   New roots subscribe before retired ones unsubscribe, so upstream
   coverage never has a window. Disconnected, only the bookkeeping
   updates — reconnection re-sends the whole forwarded set. *)
let sync_forwarded_locked t =
  let target = Hashtbl.create 8 in
  List.iter
    (fun (tok, _) -> Hashtbl.replace target tok ())
    (Lattice.minimal_cover t.lat);
  let to_add =
    Hashtbl.fold
      (fun tok () acc -> if Hashtbl.mem t.forwarded tok then acc else tok :: acc)
      target []
  and to_drop =
    Hashtbl.fold
      (fun tok () acc -> if Hashtbl.mem target tok then acc else tok :: acc)
      t.forwarded []
  in
  let err = ref None in
  let keep e = if !err = None then err := Some e in
  if t.conn <> None then begin
    List.iter
      (fun tok ->
        match Hashtbl.find_opt t.subs tok with
        | None -> ()
        | Some sub -> (
          t.wire_subscribes <- t.wire_subscribes + 1;
          match
            request_locked t
              (Transport.Subscribe
                 { token = tok; subscriber = sub.subscriber; body = sub.body })
              ~token:tok
          with
          | Ok _ -> ()
          | Error e -> keep e))
      (List.sort Int.compare to_add);
    List.iter
      (fun tok ->
        t.wire_unsubscribes <- t.wire_unsubscribes + 1;
        match
          request_locked t (Transport.Unsubscribe { token = tok }) ~token:tok
        with
        | Ok _ -> ()
        | Error e -> keep e)
      (List.sort Int.compare to_drop)
  end;
  Hashtbl.reset t.forwarded;
  Hashtbl.iter (fun tok () -> Hashtbl.replace t.forwarded tok ()) target;
  match !err with None -> Ok () | Some e -> Error e

(* {1 Upstream publish buffering (relays)} *)

let flush_outbox_locked t =
  let rec go () =
    if t.conn <> None then
      match Queue.peek_opt t.outbox with
      | None -> ()
      | Some (origin, events, ctx) -> (
        let token = t.next_token in
        t.next_token <- token + 1;
        match
          request_locked t
            (Transport.Publish { token; origin; events; ctx })
            ~token
        with
        | Ok (cursor, count) ->
          (* The upstream journal now carries these; mark them applied
             so a later replay never re-offers what we sent up. *)
          if cursor >= 0 then
            for i = 0 to count - 1 do
              Hashtbl.replace t.applied (cursor + i, 0) ()
            done;
          ignore (Queue.pop t.outbox);
          go ()
        | Error _ -> ()
        (* retried on the next tick / after reconnect *))
  in
  go ()

let forward_up ?(ctx = None) t ~origin events =
  if Array.length events > 0 then
    with_op t (fun () ->
        Queue.push (origin, events, ctx) t.outbox;
        flush_outbox_locked t)

(* {1 Lifecycle} *)

(* Handshake under a kernel receive deadline: a server that accepted
   the connection but never answers cannot park us. The socket is
   abandoned on timeout, so the mid-stream desync caveat of
   [set_recv_timeout] never applies. *)
let handshake t conn =
  let fingerprint = Codec.schema_fingerprint t.schema in
  Transport.set_recv_timeout conn (Some t.deadline_s);
  let started = Transport.now_s () in
  let reply =
    match
      Transport.send conn
        (Transport.Hello
           { version = Transport.protocol_version; fingerprint; name = t.name })
    with
    | () -> Transport.recv conn t.schema
    | exception (Sys_error _ | Unix.Unix_error _) -> Error `Eof
  in
  Transport.set_recv_timeout conn None;
  match reply with
  | Ok (Transport.Welcome { version = _; fingerprint = fp; cursor; name }) ->
    if String.equal fp fingerprint then Ok (cursor, name)
    else Error "server schema fingerprint mismatch"
  | Ok (Transport.Reject { reason }) -> Error reason
  | Ok m -> Error ("unexpected " ^ Transport.message_name m)
  | Error `Eof ->
    if Transport.now_s () -. started >= t.deadline_s *. 0.9 then Error "timeout"
    else Error "connection closed during handshake"
  | Error (`Corrupt m) -> Error ("corrupt frame during handshake: " ^ m)

(* Dial + handshake + receiver spawn. Assumes [op_mutex] and no
   current link. Returns the server's cursor. *)
let dial_locked t =
  match Transport.dial ~seed:t.seed ~max_frame:t.max_frame t.addr with
  | exception (Unix.Unix_error _ as e) ->
    Error
      (Printf.sprintf "dial %s: %s"
         (Transport.addr_to_string t.addr)
         (Printexc.to_string e))
  | conn -> (
    match handshake t conn with
    | Error e ->
      Transport.close_conn conn;
      Error e
    | Ok (cursor, upstream) ->
      let now = Transport.now_s () in
      t.last_rx <- now;
      t.last_tx <- now;
      t.conn <- Some conn;
      t.upstream <- upstream;
      spawn_rx t conn;
      set_state t 1.0;
      Ok cursor)

(* Redial after a disconnect, keeping every cursor and subscription:
   re-send the forwarded root set. Stale inbox remains (a [Closed]
   from the old link, undrained deliveries) are processed first so
   they cannot be mistaken for the new link's traffic. *)
let reconnect_locked t =
  ignore (drain_locked t);
  inbox_clear t;
  match dial_locked t with
  | Error _ as e -> e
  | Ok _cursor ->
    let err = ref None in
    Hashtbl.iter
      (fun tok () ->
        match Hashtbl.find_opt t.subs tok with
        | None -> ()
        | Some sub -> (
          t.wire_subscribes <- t.wire_subscribes + 1;
          match
            request_locked t
              (Transport.Subscribe
                 { token = tok; subscriber = sub.subscriber; body = sub.body })
              ~token:tok
          with
          | Ok _ -> ()
          | Error e -> if !err = None then err := Some e))
      t.forwarded;
    (match !err with None -> Ok () | Some e -> Error e)

(* Catch-up replay from the last known-complete cursor. Assumes
   [op_mutex]. *)
let replay_locked t =
  let req_ctx =
    match t.tracer with None -> None | Some tr -> Trace.context tr
  in
  match send_locked t (Transport.Replay { since = t.complete_to; ctx = req_ctx })
  with
  | Error e -> Error e
  | Ok () ->
    let deadline = Transport.now_s () +. t.deadline_s in
    let applied = ref 0 in
    let rec loop () =
      match inbox_pop_deadline t ~deadline with
      | None -> Error "timeout"
      | Some (Closed reason) ->
        drop_link_locked t;
        Error reason
      | Some
          (Msg
             (Transport.Deliver { cursor; idx; origin; event; ctx; replay = _ }))
        ->
        if apply_deliver t ~cursor ~idx ~origin ~ctx event then incr applied;
        loop ()
      | Some (Msg (Transport.Replay_done { cursor; complete })) ->
        t.complete_to <- cursor - 1;
        Ok (!applied, complete)
      | Some (Msg m) ->
        handle_async t m;
        loop ()
    in
    loop ()

(* {1 Ticker} *)

(* One thread owns every clock-driven duty. Each tick it (1) wakes
   deadline waiters — unconditionally and before anything that could
   block, (2) under try-lock only: heartbeats, liveness reaping,
   scheduled redial + replay, outbox flush, optional auto-drain. *)
let tick_locked t =
  let now = Transport.now_s () in
  (* A dead receiver means a dead link, whether or not anything is
     draining the inbox: tear it down so the redial schedule arms.
     Queued deliveries stay queued for the caller; the stale [Closed]
     entry is consumed harmlessly (the link is already down). *)
  if t.rx_dead && t.conn <> None then drop_link_locked t;
  (match (t.conn, t.heartbeat) with
  | Some conn, Some hb ->
    if now -. t.last_rx > Transport.deadline_of hb then begin
      t.hb_misses <- t.hb_misses + 1;
      Option.iter Metrics.Counter.incr t.m_hb_misses;
      Log.warn (fun m ->
          m "%s: upstream silent for %.1fs, dropping link" t.name
            (now -. t.last_rx));
      drop_link_locked t
    end
    else if
      now -. t.last_rx > hb.Transport.period_s
      && now -. t.last_tx > hb.Transport.period_s
    then (
      try
        Transport.send conn (Transport.Ping { token = 0 });
        t.last_tx <- now
      with Sys_error _ | Unix.Unix_error _ -> drop_link_locked t)
  | _ -> ());
  (match (t.conn, t.redial) with
  | None, Some r when now >= r.next_at -> (
    match reconnect_locked t with
    | Ok () ->
      t.reconnects <- t.reconnects + 1;
      Option.iter Metrics.Counter.incr t.m_reconnects;
      Log.info (fun m -> m "%s: reconnected to %s" t.name
                   (Transport.addr_to_string t.addr));
      r.backoff_s <- Float.max 0.01 (r.policy.Supervise.backoff_ns /. 1e9);
      ignore (replay_locked t)
    | Error _ ->
      (* Capped exponential backoff with seeded jitter: the
         {!Supervise.policy} schedule, interpreted over the wall
         clock. *)
      let u = Prng.float r.rng ~bound:1.0 in
      let scale = 1.0 -. (r.policy.Supervise.jitter *. u) in
      r.next_at <- now +. (r.backoff_s *. scale);
      r.backoff_s <-
        Float.min r.max_backoff_s
          (r.backoff_s *. Float.max 1.0 r.policy.Supervise.multiplier))
  | _ -> ());
  if t.conn <> None then flush_outbox_locked t;
  if t.auto_drain then ignore (drain_locked t)

let spawn_ticker t =
  let th =
    Thread.create
      (fun () ->
        while not t.closing do
          Thread.delay t.tick_s;
          Mutex.lock t.inbox_mutex;
          Condition.broadcast t.inbox_cond;
          Mutex.unlock t.inbox_mutex;
          if (not t.closing) && Mutex.try_lock t.op_mutex then begin
            (try tick_locked t with _ -> ());
            Mutex.unlock t.op_mutex
          end
        done)
      ()
  in
  t.ticker_tid <- Thread.id th;
  t.ticker <- Some th

let connect ?(name = "client") ?(seed = Transport.default_seed)
    ?(max_frame = Codec.default_max_frame) ?(deadline_s = 30.0)
    ?(heartbeat = Some Transport.default_heartbeat) ?reconnect
    ?(max_backoff_s = 30.0) ?metrics ?tracer ?(tick_s = 0.02)
    ?(auto_drain = false) ?(inbox_cap = 65536) ?on_deliver ?skip_origin ?local
    schema addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if not (deadline_s > 0.0) then
    invalid_arg "Broker_client.connect: deadline_s must be positive";
  let labels = [ ("node", name); ("role", "client") ] in
  let m_state =
    Option.map
      (fun m ->
        Metrics.gauge m ~labels ~help:"1 = link up, 0 = link down"
          "genas_net_peer_state")
      metrics
  and m_hb_misses =
    Option.map
      (fun m ->
        Metrics.counter m ~labels
          ~help:"Links dropped after missing the heartbeat deadline"
          "genas_net_heartbeat_misses_total")
      metrics
  and m_reconnects =
    Option.map
      (fun m ->
        Metrics.counter m ~labels ~help:"Successful automatic reconnects"
          "genas_net_reconnects_total")
      metrics
  and m_rx_apply =
    Option.map
      (fun m ->
        Metrics.histogram m ~labels
          ~help:"Time applying one received delivery, ns"
          "genas_net_rx_apply_duration_ns")
      metrics
  in
  let redial =
    Option.map
      (fun policy ->
        {
          policy;
          max_backoff_s;
          rng = Prng.create ~seed:policy.Supervise.jitter_seed;
          backoff_s = Float.max 0.01 (policy.Supervise.backoff_ns /. 1e9);
          next_at = 0.0;
        })
      reconnect
  in
  let owns_local, local =
    match local with Some b -> (false, b) | None -> (true, Broker.create schema)
  in
  let t =
    {
      schema;
      name;
      addr;
      seed;
      max_frame;
      deadline_s;
      heartbeat;
      tick_s;
      auto_drain;
      inbox_cap;
      tracer;
      on_deliver;
      skip_origin;
      local;
      owns_local;
      lat = Lattice.create schema;
      subs = Hashtbl.create 8;
      forwarded = Hashtbl.create 8;
      applied = Hashtbl.create 64;
      outbox = Queue.create ();
      redial;
      upstream = "";
      complete_to = -1;
      next_token = 1;
      op_mutex = Mutex.create ();
      conn = None;
      rx = None;
      rx_paused = false;
      rx_dead = false;
      ticker = None;
      ticker_tid = -1;
      closing = false;
      inbox = Queue.create ();
      inbox_mutex = Mutex.create ();
      inbox_cond = Condition.create ();
      last_rx = 0.0;
      last_tx = 0.0;
      hb_misses = 0;
      reconnects = 0;
      applied_total = 0;
      duplicates = 0;
      wire_subscribes = 0;
      wire_unsubscribes = 0;
      m_state;
      m_hb_misses;
      m_reconnects;
      m_rx_apply;
    }
  in
  match with_op t (fun () -> dial_locked t) with
  | Error e ->
    if owns_local then Broker.close t.local;
    Error e
  | Ok cursor ->
    (* Records before this point predate the client: it is complete up
       to them by definition. *)
    t.complete_to <- cursor - 1;
    spawn_ticker t;
    Ok t

let reconnect t =
  with_op t (fun () ->
      drop_link_locked t;
      reconnect_locked t)

let disconnect_locked t =
  (match t.conn with
  | Some conn -> (
    try Transport.send conn Transport.Bye
    with Sys_error _ | Unix.Unix_error _ -> ())
  | None -> ());
  drop_link_locked t

let close t =
  t.closing <- true;
  Mutex.lock t.inbox_mutex;
  Condition.broadcast t.inbox_cond;
  Mutex.unlock t.inbox_mutex;
  (match t.ticker with
  | Some th ->
    t.ticker <- None;
    (try Thread.join th with _ -> ())
  | None -> ());
  with_op t (fun () -> disconnect_locked t);
  inbox_clear t;
  if t.owns_local then Broker.close t.local

(* Chaos hooks: a paused receiver models a stalled consumer (kernel
   buffers fill; the server's bounded queue eventually trips). *)
let pause_rx t = t.rx_paused <- true

let resume_rx t = t.rx_paused <- false

(* {1 Operations} *)

let subscribe t ?subscriber body handler =
  with_op t (fun () ->
      let subscriber = match subscriber with Some s -> s | None -> t.name in
      match Lang.parse_profile t.schema body with
      | Error e -> Error e
      | Ok profile -> (
        let token = t.next_token in
        t.next_token <- token + 1;
        let sid = Broker.subscribe t.local ~subscriber ~profile handler in
        ignore (Lattice.add t.lat ~id:token profile);
        Hashtbl.replace t.subs token { token; subscriber; body; sid = Some sid };
        match sync_forwarded_locked t with
        | Ok () -> Ok token
        | Error e -> Error e))

let unsubscribe t token =
  with_op t (fun () ->
      match Hashtbl.find_opt t.subs token with
      | None -> Error (Printf.sprintf "unknown subscription token %d" token)
      | Some sub ->
        Option.iter (fun sid -> ignore (Broker.unsubscribe t.local sid)) sub.sid;
        Hashtbl.remove t.subs token;
        ignore (Lattice.remove t.lat token);
        sync_forwarded_locked t)

(* Upstream-only subscription (no local handler): the relay's mirror
   of a downstream profile. Wire errors are swallowed — the forwarded
   set is re-synced wholesale on reconnect. *)
let forward_profile t ?subscriber body =
  with_op t (fun () ->
      let subscriber = match subscriber with Some s -> s | None -> t.name in
      match Lang.parse_profile t.schema body with
      | Error e -> Error e
      | Ok profile ->
        let token = t.next_token in
        t.next_token <- token + 1;
        ignore (Lattice.add t.lat ~id:token profile);
        Hashtbl.replace t.subs token { token; subscriber; body; sid = None };
        ignore (sync_forwarded_locked t);
        Ok token)

let retire_profile t token =
  with_op t (fun () ->
      match Hashtbl.find_opt t.subs token with
      | None -> ()
      | Some sub ->
        Option.iter (fun sid -> ignore (Broker.unsubscribe t.local sid)) sub.sid;
        Hashtbl.remove t.subs token;
        ignore (Lattice.remove t.lat token);
        ignore (sync_forwarded_locked t))

let publish t event =
  with_op t (fun () ->
      let run () =
        (* Local delivery first — the origin node matches its own
           subscriptions directly, as {!Router.publish} does. *)
        let n = Broker.publish t.local event in
        let token = t.next_token in
        t.next_token <- token + 1;
        (* Captured while the publish span is open: the upstream hop
           parents under this node's publish. *)
        let ctx =
          match t.tracer with None -> None | Some tr -> Trace.context tr
        in
        match
          request_locked t
            (Transport.Publish
               { token; origin = t.name; events = [| event |]; ctx })
            ~token
        with
        | Error e -> Error e
        | Ok (cursor, count) ->
          (* Mark our own events applied: the server never echoes them
             back, but a later replay would — and the local broker
             already delivered them. *)
          if cursor >= 0 then
            for i = 0 to count - 1 do
              Hashtbl.replace t.applied (cursor + i, 0) ()
            done;
          Ok n
      in
      match t.tracer with
      | None -> run ()
      | Some tr -> Trace.with_trace tr ~name:"net.publish" run)

(* {1 Mesh introspection} *)

(* One Status_req/Status round trip. Deliveries and unmatched acks
   encountered while waiting are applied/absorbed as usual. *)
let status_request t =
  with_op t (fun () ->
      let token = t.next_token in
      t.next_token <- token + 1;
      match send_locked t (Transport.Status_req { token }) with
      | Error e -> Error e
      | Ok () ->
        let deadline = Transport.now_s () +. t.deadline_s in
        let rec loop () =
          match inbox_pop_deadline t ~deadline with
          | None -> Error "timeout"
          | Some (Closed reason) ->
            drop_link_locked t;
            Error reason
          | Some (Msg (Transport.Status { token = tk; nodes })) when tk = token
            ->
            Ok nodes
          | Some (Msg (Transport.Reject { reason })) ->
            drop_link_locked t;
            Error reason
          | Some (Msg m) ->
            handle_async t m;
            loop ()
        in
        loop ())

(* Catch-up replay from the last known-complete cursor. Returns
   [(applied, complete)]: newly applied events, and whether the server
   still retained the whole range ([false] = a snapshot discarded part
   of it; see docs/NETWORKING.md on resync). *)
let replay t = with_op t (fun () -> replay_locked t)
