(** Monotonic time source.

    All span timing in the observability layer reads this clock, never
    [Unix.gettimeofday] (wall time can jump) or [Sys.time] (CPU time).
    The default source is the CLOCK_MONOTONIC stub that the benchmark
    toolkit already links; tests may install a deterministic source. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary epoch; monotonically non-decreasing
    under the default source. *)

val set_source : (unit -> int64) -> unit
(** Replace the time source (testing hook). *)

val reset_source : unit -> unit
(** Restore the default monotonic source. *)
