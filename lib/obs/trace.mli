(** Causal tracing with a flight recorder.

    A tracer owns at most one {e active} trace at a time (the library
    is synchronous, so one `publish` = one causal tree). Starting a
    trace takes a deterministic sampling decision from a seeded PRNG;
    a sampled trace collects parent/child spans timed by
    {!Clock.now_ns}, optional string attributes, and optionally the
    flat-matcher traversal path of the event. Completed traces land in
    a fixed-size ring buffer — the flight recorder — which can be
    exported as Chrome trace-event JSON ([chrome://tracing],
    [ui.perfetto.dev]) or dumped as text for post-mortems.

    Determinism: with [Clock.set_source] installed and a fixed [seed],
    two identical runs produce byte-identical {!to_chrome} output
    (timestamps are normalized to the earliest span start).

    Cost: components take the tracer as an optional argument; with
    [?tracer:None] the hot path never touches this module. With a
    tracer attached but the trace unsampled, every span call is one
    [match] on [t.current].

    Thread safety: each state transition is serialized under an
    internal mutex (never held across a user callback, so nested
    {!with_span} re-entry cannot deadlock). One tracer may be shared
    by a networked broker's connection threads, its monitor, and a
    client ticker; callers that need whole-trace atomicity (one
    causal tree per publish) serialize publishes themselves, as the
    broker lock already does.

    Across processes, {!context} captures the active (trace id, span
    id) pair for a wire frame and {!with_remote_trace} adopts it on
    the receiving node; {!export} and {!merge_dumps} stitch the
    per-node flight recorders into one Chrome trace afterwards. *)

type t
(** A tracer: sampler state + active trace + completed-trace ring. *)

type status = Ok | Error of string

type span = {
  span_id : int;  (** unique within its trace, in start order *)
  parent : int;  (** [span_id] of the parent, [-1] for the root *)
  span_name : string;
  depth : int;  (** nesting depth at start; root is 0 *)
  start_ns : int64;
  mutable end_ns : int64;  (** [Int64.min_int] while open *)
  mutable status : status;
  mutable attrs : (string * string) list;  (** reverse insertion order *)
}

type path = {
  path_nodes : int array;  (** flat-matcher node ids, root first *)
  path_levels : int array;  (** tree level of each visited node *)
  path_edges : int array;
      (** edge taken at each node: an edge slot [>= 0], [-1] for the
          rest child, [-2] for a reject, [-3] on arrival at the leaf
          level *)
  path_comparisons : int array;  (** comparisons spent at each node *)
  path_matched : int array;  (** profile ids matched, ascending *)
}
(** One event's traversal through the compiled flat matcher: the
    credits touched from the epoch-stamped cursor. *)

type trace = {
  trace_id : int;
  root_name : string;
  mutable spans : span list;  (** reverse start order *)
  mutable span_count : int;
  mutable path : path option;
  remote : (string * int) option;
      (** [(origin node, parent span id)] when the trace id was adopted
          from a wire context via {!with_remote_trace}; [None] for a
          locally rooted trace *)
}

val create :
  ?sample:float ->
  ?capacity:int ->
  ?metrics:Metrics.t ->
  ?on_dump:(string -> unit) ->
  ?clock:(unit -> int64) ->
  seed:int ->
  unit ->
  t
(** [sample] is the probability a new root trace is recorded (default
    [1.0]; the decision stream is seeded, so runs are reproducible).
    [capacity] bounds the flight-recorder ring (default 16; oldest
    trace evicted). With [metrics], span durations fold into the
    registry as [genas_trace_span_duration_ns{span="..."}] histograms
    plus trace/span/error/eviction/dropped-span counters. [on_dump] is
    invoked with the text of every {!record_crash} dump. [clock]
    overrides the span time source for this tracer only (default
    {!Clock.now_ns}) — networked processes run background ticker and
    monitor threads whose own clock reads would perturb a process-wide
    [Clock.set_source] fake clock, so deterministic multi-process runs
    give each tracer a private logical clock instead.

    @raise Invalid_argument if [sample] is outside [0,1] or
    [capacity < 1]. *)

val with_trace : t -> name:string -> (unit -> 'a) -> 'a
(** Run [f] under a new root trace (if sampled). If a trace is already
    active, behaves as {!with_span} — a nested publish joins its
    caller's trace rather than starting a second root. If [f] raises,
    the root span closes with an error status, the trace still lands
    in the ring, and the exception is re-raised. *)

val with_remote_trace :
  t -> name:string -> origin:string -> (int * int) option -> (unit -> 'a) -> 'a
(** [with_remote_trace t ~name ~origin ctx f] runs [f] under a root
    span that {e adopts} a wire trace context: with
    [ctx = Some (trace_id, parent_span)], the new trace reuses
    [trace_id] and records [(origin, parent_span)] as its [remote]
    link, so {!merge_dumps} can parent this node's spans under the
    publisher's. Adoption never consumes a local sampling decision
    (the context's presence means the origin sampled it). With
    [ctx = None] this is exactly {!with_trace}; when a trace is
    already active it nests as a plain child span. *)

val with_span : t -> name:string -> (unit -> 'a) -> 'a
(** Run [f] under a child span of the active trace; a no-op wrapper
    when no trace is active. Exception-safe like {!with_trace}. *)

val start_span : t -> name:string -> span option
(** Explicit span handle for code that cannot use a closure ([None]
    when no trace is active). Must be balanced with {!finish_span}.

    @raise Invalid_argument on a malformed span name (allowed:
    alphanumerics, [_], [.], [-]). *)

val finish_span : t -> ?error:string -> span option -> unit
(** Close a span started with {!start_span}. Any deeper spans still
    open are closed at the same instant with an error status, so
    nesting depth returns to the span's own level; a second finish of
    the same span is a no-op. *)

val add_attr : t -> string -> string -> unit
(** Attach a key/value attribute to the innermost open span (no-op
    when none). *)

val attach_path : t -> path -> unit
(** Attach a matcher traversal path to the active trace (no-op when
    none). *)

val active : t -> bool
(** A sampled trace is currently open. *)

val sample_rate : t -> float
(** The [sample] probability the tracer was created with. The ensemble
    layer skips matcher-path profiling entirely when it is [0.0] — a
    never-sampling tracer costs one PRNG draw per publish and nothing
    on the matching path. *)

val current_trace_id : t -> int option

val context : t -> (int * int) option
(** The active trace's [(trace_id, innermost open span id)] — the pair
    a Publish/Deliver frame carries so the receiving node's spans can
    parent under this one. [None] when no trace is active; the span id
    is [-1] in the (unreachable in practice) window where a trace is
    open but its root span is not. *)

val depth : t -> int
(** Open-span nesting depth; 0 when idle. *)

val started : t -> int
(** Root traces offered to the sampler (sampled or not). *)

val sampled : t -> int

val completed : t -> int

val evicted : t -> int

val dropped_spans : t -> int
(** Spans overwritten unexported: the summed [span_count] of every
    trace the ring evicted. Also exported as the
    [genas_trace_dropped_spans_total] counter with [?metrics]. *)

val traces : t -> trace list
(** Flight-recorder contents, oldest first. *)

val to_chrome : t -> string
(** The ring as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]): one complete ["ph":"X"] event per span
    ([ts]/[dur] in microseconds, normalized to the earliest span
    start; [tid] = trace id + 1) and one ["ph":"i"] instant event per
    attached matcher path. *)

val export : t -> node:string -> string
(** Versioned, line-based text form of the flight-recorder ring
    ([genas-trace-dump 1] header, the node name, then every completed
    trace with its spans, attrs, remote link, and matcher path) — the
    per-node artifact {!merge_dumps} consumes. Deterministic under a
    deterministic clock. *)

val merge_dumps : string list -> string
(** Stitch per-node {!export} dumps into one Chrome trace-event JSON
    document: one Chrome [pid] per dump (argument order, 1-based),
    each node's timestamps normalized to its own earliest span start
    (no cross-host clock sync assumed), span [args] carrying
    trace/span/parent ids and the node name, and a flow-event arrow
    ([ph "s"]/[ph "f"], name [net.ctx]) from every adopted trace's
    remote parent span to its local root. Traces adopted from a node
    not among the dumps keep their [remote_node]/[remote_parent] args
    but get no arrow.

    @raise Invalid_argument on a malformed or version-mismatched
    dump. *)

val dump : t -> string
(** Human-readable flight-recorder dump: every held trace (plus the
    in-flight one, if any) with relative span offsets, durations,
    statuses, attributes, and matcher paths. *)

val record_crash : t -> reason:string -> string
(** Build a dump prefixed with [reason], remember it as {!last_dump},
    invoke the [on_dump] hook, and return it. Called by the ensemble
    layer when a handler or an injected fault crashes a publish. *)

val last_dump : t -> string option
