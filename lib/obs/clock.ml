let default : unit -> int64 = Monotonic_clock.now

let source = ref default

let now_ns () = !source ()

let set_source f = source := f

let reset_source () = source := default
