type t = int64

let start () = Clock.now_ns ()

let elapsed_ns t0 =
  Float.max 0.0 (Int64.to_float (Int64.sub (Clock.now_ns ()) t0))

let finish t0 hist = Metrics.Histogram.observe hist (elapsed_ns t0)

let time hist f =
  let t0 = start () in
  Fun.protect ~finally:(fun () -> finish t0 hist) f
