type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let number v = if Float.is_finite v then Float v else Null

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr v =
  if not (Float.is_finite v) then
    invalid_arg "Json.to_string: non-finite number (use Json.number)";
  let s = Printf.sprintf "%.12g" v in
  (* Keep the token a JSON number: %g may print "1e+06" (fine) or a
     bare integer, which is also fine. *)
  s

let to_string ?(indent = 2) t =
  let b = Buffer.create 1024 in
  let nl level =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (indent * level) ' ')
    end
  in
  let rec go level = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_repr v)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          nl (level + 1);
          go (level + 1) item)
        items;
      nl level;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          nl (level + 1);
          escape_string b k;
          Buffer.add_string b (if indent > 0 then ": " else ":");
          go (level + 1) v)
        fields;
      nl level;
      Buffer.add_char b '}'
  in
  go 0 t;
  b

let to_string ?indent t = Buffer.contents (to_string ?indent t)

(* ------------------------------------------------------------------ *)
(* Validator: recursive descent over the grammar, values discarded.    *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    String.iter
      (fun c ->
        match peek () with
        | Some c' when c' = c -> advance ()
        | _ -> fail (Printf.sprintf "bad literal (expected %S)" word))
      word
  in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
    | _ -> fail "bad \\u escape"
  in
  let string_body () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          loop ()
        | Some 'u' ->
          advance ();
          hex_digit ();
          hex_digit ();
          hex_digit ();
          hex_digit ();
          loop ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ ->
        advance ();
        loop ()
    in
    loop ()
  in
  let digits () =
    let start = !pos in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected digit"
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "bad number");
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          string_body ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec items () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items ()
      end
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "invalid JSON at byte %d: %s" at msg)
