(** Lightweight span timing over the monotonic {!Clock}. *)

type t
(** An open span (start timestamp). Spans are plain values; nothing is
    recorded until {!finish} or {!time} observes the elapsed time. *)

val start : unit -> t

val elapsed_ns : t -> float
(** Nanoseconds since {!start}; never negative. *)

val finish : t -> Metrics.histogram -> unit
(** Observe the elapsed nanoseconds into the histogram. *)

val time : Metrics.histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its duration (also on exception). *)
