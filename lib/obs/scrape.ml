(* Minimal HTTP/1.0 scrape endpoint over the metrics registry: a pull
   port per node, thread-per-request, close-delimited responses. Lives
   in lib/obs (not the ensemble layer) so anything holding a registry
   can expose one without pulling in the wire protocol. *)

type t = {
  registry : Metrics.t;
  node : string;
  lsock : Unix.file_descr;
  bound : Unix.sockaddr;
  started_ns : int64;
  uptime : Metrics.gauge;
  mutable stopping : bool;
  mutable acceptor : Thread.t option;
}

let listen sockaddr =
  let domain = Unix.domain_of_sockaddr sockaddr in
  (match sockaddr with
  | Unix.ADDR_UNIX path when path <> "" ->
    (* A stale socket file from a dead process blocks bind. *)
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match domain with
  | Unix.PF_INET | Unix.PF_INET6 -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | _ -> ());
  (try
     Unix.bind fd sockaddr;
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let index_body t =
  Printf.sprintf
    "genas scrape endpoint (node %s)\n\
     /metrics       Prometheus text exposition\n\
     /metrics.json  JSON snapshot\n" t.node

let respond t path =
  Metrics.Gauge.set t.uptime
    (Int64.to_float (Int64.sub (Clock.now_ns ()) t.started_ns) /. 1e9);
  match path with
  | "/metrics" ->
    http_response ~status:"200 OK"
      ~content_type:"text/plain; version=0.0.4"
      (Metrics.to_prometheus t.registry)
  | "/metrics.json" | "/json" ->
    http_response ~status:"200 OK" ~content_type:"application/json"
      (Metrics.to_json t.registry)
  | "/" | "" ->
    http_response ~status:"200 OK" ~content_type:"text/plain" (index_body t)
  | _ ->
    http_response ~status:"404 Not Found" ~content_type:"text/plain"
      "not found\n"

(* One request per connection: parse the request line, drain headers
   to the blank line, answer, close. Anything malformed gets a 400. *)
let serve_conn t fd =
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let request = try Some (input_line ic) with End_of_file | Sys_error _ -> None in
  (try
     let rec drain () =
       match input_line ic with
       | "" | "\r" -> ()
       | _ -> drain ()
     in
     drain ()
   with End_of_file | Sys_error _ -> ());
  let reply =
    match request with
    | Some line -> (
      match String.split_on_char ' ' (String.trim line) with
      | "GET" :: path :: _ -> respond t path
      | _ ->
        http_response ~status:"400 Bad Request" ~content_type:"text/plain"
          "only GET is served\n")
    | None ->
      http_response ~status:"400 Bad Request" ~content_type:"text/plain"
        "empty request\n"
  in
  let len = String.length reply in
  let written = ref 0 in
  (try
     while !written < len do
       written :=
         !written + Unix.write_substring fd reply !written (len - !written)
     done
   with Unix.Unix_error _ -> ())

let accept_loop t =
  while not t.stopping do
    match Unix.accept t.lsock with
    | fd, _ -> ignore (Thread.create (fun () -> serve_conn t fd) ())
    | exception Unix.Unix_error _ -> ()
  done

let start ?(node = "node") ~metrics sockaddr =
  let lsock = listen sockaddr in
  let bound = Unix.getsockname lsock in
  let build_info =
    Metrics.gauge metrics "genas_build_info"
      ~help:"constant 1; the labels carry the build identity"
      ~labels:[ ("node", node); ("ocaml", Sys.ocaml_version) ]
  in
  Metrics.Gauge.set build_info 1.0;
  let uptime =
    Metrics.gauge metrics "genas_uptime_seconds"
      ~help:"seconds since the scrape endpoint started"
      ~labels:[ ("node", node) ]
  in
  let t =
    {
      registry = metrics;
      node;
      lsock;
      bound;
      started_ns = Clock.now_ns ();
      uptime;
      stopping = false;
      acceptor = None;
    }
  in
  t.acceptor <- Some (Thread.create accept_loop t);
  t

let addr t = t.bound

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* shutdown(2) wakes the acceptor out of accept(2); close alone
       would not. *)
    (try Unix.shutdown t.lsock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    t.acceptor <- None;
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    match t.bound with
    | Unix.ADDR_UNIX path when path <> "" ->
      (try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* A tiny matching client, so tests and the CLI need no curl. *)

let get sockaddr ~path =
  match Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    Fun.protect ~finally @@ fun () ->
    match Unix.connect fd sockaddr with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | () -> (
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      match
        let len = String.length req in
        let written = ref 0 in
        while !written < len do
          written :=
            !written + Unix.write_substring fd req !written (len - !written)
        done
      with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | () ->
        let b = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec read_all () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes b chunk 0 n;
            read_all ()
          | exception Unix.Unix_error _ -> ()
        in
        read_all ();
        let raw = Buffer.contents b in
        (* Split the status line and headers off the close-delimited
           body. *)
        let code =
          match String.index_opt raw ' ' with
          | Some i when i + 4 <= String.length raw -> (
            match int_of_string_opt (String.sub raw (i + 1) 3) with
            | Some c -> c
            | None -> 0)
          | _ -> 0
        in
        let body =
          let rec find i =
            if i + 3 >= String.length raw then None
            else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
            else find (i + 1)
          in
          match find 0 with
          | Some i -> String.sub raw i (String.length raw - i)
          | None -> ""
        in
        if code = 0 then Error "malformed response" else Ok (code, body)))
