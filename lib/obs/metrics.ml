(* Instruments are hit concurrently: server tx threads, the monitor
   thread, client tickers, and pool domains all share one registry.
   Counters and gauges are single atomics (a CAS loop keeps the
   max_int saturation exact under contention); histograms update five
   fields per observation, so each carries its own mutex. *)

type counter = { c_value : int Atomic.t }

type gauge = { g_value : float Atomic.t }

type histogram = {
  bounds : float array;  (** finite upper bounds, strictly increasing *)
  counts : int array;  (** per-bucket; [counts.(length bounds)] = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_mu : Mutex.t;
}

type instrument =
  | Counter_i of counter
  | Gauge_i of gauge
  | Histogram_i of histogram

type metric = {
  name : string;
  labels : (string * string) list;  (** sorted by key *)
  help : string;
  inst : instrument;
}

type t = {
  mutable metrics : metric list; (* reverse registration order *)
  t_mu : Mutex.t;
}

let create () = { metrics = []; t_mu = Mutex.create () }

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let kind_name = function
  | Counter_i _ -> "counter"
  | Gauge_i _ -> "gauge"
  | Histogram_i _ -> "histogram"

let register t ~help ~labels name make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: malformed metric name %S" name);
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  Mutex.protect t.t_mu @@ fun () ->
  match
    List.find_opt (fun m -> m.name = name && m.labels = labels) t.metrics
  with
  | Some m -> m.inst
  | None ->
    let inst = make () in
    t.metrics <- { name; labels; help; inst } :: t.metrics;
    inst

let counter t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels name (fun () ->
        Counter_i { c_value = Atomic.make 0 })
  with
  | Counter_i c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics: %S is already a %s" name (kind_name other))

let gauge t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels name (fun () -> Gauge_i { g_value = Atomic.make 0.0 })
  with
  | Gauge_i g -> g
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics: %S is already a %s" name (kind_name other))

let exponential_buckets ~start ~factor ~count =
  if start <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Metrics.exponential_buckets";
  Array.init count (fun i -> start *. (factor ** float_of_int i))

let default_latency_buckets =
  (* 100 ns .. 1 s, roughly 1-2.5-5 per decade. *)
  [|
    100.; 250.; 500.; 1e3; 2.5e3; 5e3; 1e4; 2.5e4; 5e4; 1e5; 2.5e5; 5e5; 1e6;
    2.5e6; 5e6; 1e7; 1e8; 1e9;
  |]

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_latency_buckets)
    name =
  let make () =
    let ok = ref (Array.length buckets > 0) in
    Array.iteri
      (fun i b ->
        if (not (Float.is_finite b)) || (i > 0 && b <= buckets.(i - 1)) then
          ok := false)
      buckets;
    if not !ok then
      invalid_arg
        (Printf.sprintf
           "Metrics: histogram %S needs strictly increasing finite buckets"
           name);
    Histogram_i
      {
        bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
        h_mu = Mutex.create ();
      }
  in
  match register t ~help ~labels name make with
  | Histogram_i h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics: %S is already a %s" name (kind_name other))

module Counter = struct
  let add c n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative amount";
    let rec go () =
      let cur = Atomic.get c.c_value in
      let next = if max_int - cur < n then max_int else cur + n in
      if not (Atomic.compare_and_set c.c_value cur next) then go ()
    in
    go ()

  let incr c = add c 1

  let value c = Atomic.get c.c_value
end

module Gauge = struct
  let set g v = Atomic.set g.g_value v

  let value g = Atomic.get g.g_value
end

(* A consistent read of one histogram: every reader (accessors,
   percentile, both exporters) goes through this snapshot so a
   concurrent observe can never tear count/sum/bucket agreement. *)
type hsnap = {
  s_bounds : float array;
  s_counts : int array;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
}

let hsnap h =
  Mutex.protect h.h_mu @@ fun () ->
  {
    s_bounds = h.bounds;
    s_counts = Array.copy h.counts;
    s_count = h.h_count;
    s_sum = h.h_sum;
    s_min = h.h_min;
    s_max = h.h_max;
  }

let percentile_of s q =
  if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    invalid_arg "Metrics.Histogram.percentile: q outside [0,1]";
  if s.s_count = 0 then Float.nan
  else begin
    let rank = q *. float_of_int s.s_count in
    let n = Array.length s.s_bounds in
    let raw = ref s.s_max in
    let cum = ref 0.0 and found = ref false in
    for i = 0 to n - 1 do
      if not !found then begin
        let c = float_of_int s.s_counts.(i) in
        if !cum +. c >= rank && c > 0.0 then begin
          let lo = if i = 0 then 0.0 else s.s_bounds.(i - 1) in
          let hi = s.s_bounds.(i) in
          let frac = (rank -. !cum) /. c in
          raw := lo +. (frac *. (hi -. lo));
          found := true
        end;
        cum := !cum +. c
      end
    done;
    (* The overflow bucket has no upper bound; fall back to the
       observed maximum, and clamp interpolation into the observed
       range either way. *)
    Float.min s.s_max (Float.max s.s_min !raw)
  end

module Histogram = struct
  let bucket_index h v =
    (* First bucket with v <= bound; binary search over the bounds. *)
    let n = Array.length h.bounds in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= h.bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let observe h v =
    let i = bucket_index h v in
    Mutex.protect h.h_mu @@ fun () ->
    h.counts.(i) <- h.counts.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v

  let count h = (hsnap h).s_count

  let sum h = (hsnap h).s_sum

  let buckets h =
    let s = hsnap h in
    Array.mapi (fun i b -> (b, s.s_counts.(i))) s.s_bounds

  let overflow h =
    let s = hsnap h in
    s.s_counts.(Array.length s.s_bounds)

  let percentile h q = percentile_of (hsnap h) q
end

(* ------------------------------------------------------------------ *)
(* Exporters.                                                          *)

let snapshot t = Mutex.protect t.t_mu (fun () -> List.rev t.metrics)

let json_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let json_of_metric m =
  let base = [ ("name", Json.Str m.name); ("labels", json_labels m.labels) ] in
  let base = if m.help = "" then base else base @ [ ("help", Json.Str m.help) ] in
  match m.inst with
  | Counter_i c -> Json.Obj (base @ [ ("value", Json.Int (Counter.value c)) ])
  | Gauge_i g -> Json.Obj (base @ [ ("value", Json.number (Gauge.value g)) ])
  | Histogram_i h ->
    let s = hsnap h in
    let pct q = if s.s_count = 0 then Json.Null else Json.number (percentile_of s q) in
    Json.Obj
      (base
      @ [
          ("count", Json.Int s.s_count);
          ("sum", Json.number s.s_sum);
          ("min", if s.s_count = 0 then Json.Null else Json.number s.s_min);
          ("max", if s.s_count = 0 then Json.Null else Json.number s.s_max);
          ("p50", pct 0.5);
          ("p90", pct 0.9);
          ("p99", pct 0.99);
          ( "buckets",
            Json.List
              (Array.to_list
                 (Array.mapi
                    (fun i b ->
                      Json.Obj
                        [ ("le", Json.number b); ("count", Json.Int s.s_counts.(i)) ])
                    s.s_bounds)) );
          ("overflow", Json.Int s.s_counts.(Array.length s.s_bounds));
        ])

let to_json t =
  let ms = snapshot t in
  let pick f = List.filter_map f ms in
  Json.to_string
    (Json.Obj
       [
         ( "counters",
           Json.List
             (pick (fun m ->
                  match m.inst with
                  | Counter_i _ -> Some (json_of_metric m)
                  | _ -> None)) );
         ( "gauges",
           Json.List
             (pick (fun m ->
                  match m.inst with Gauge_i _ -> Some (json_of_metric m) | _ -> None))
         );
         ( "histograms",
           Json.List
             (pick (fun m ->
                  match m.inst with
                  | Histogram_i _ -> Some (json_of_metric m)
                  | _ -> None)) );
       ])
  ^ "\n"

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
           labels)
    ^ "}"

let counters t =
  List.filter_map
    (fun m ->
      match m.inst with
      | Counter_i c -> Some (m.name ^ prom_labels m.labels, Counter.value c)
      | _ -> None)
    (snapshot t)

let prom_float v =
  if not (Float.is_finite v) then "0"
  else
    let s = Printf.sprintf "%.12g" v in
    s

let to_prometheus t =
  let b = Buffer.create 1024 in
  (* The exposition format requires every sample of a metric family to
     appear as one contiguous group under a single # TYPE line, even
     when labelled members were registered interleaved with other
     metrics. Group by name in first-registration order, and take the
     first non-empty help string of the family (the unlabelled member
     usually carries it, but it may be registered after a labelled
     sibling). *)
  let families = Hashtbl.create 16 in
  let order =
    List.fold_left
      (fun order m ->
        match Hashtbl.find_opt families m.name with
        | Some members ->
          members := m :: !members;
          order
        | None ->
          Hashtbl.replace families m.name (ref [ m ]);
          m.name :: order)
      [] (snapshot t)
  in
  let emit_samples m =
    let ls = prom_labels m.labels in
    match m.inst with
    | Counter_i c ->
      Buffer.add_string b (Printf.sprintf "%s%s %d\n" m.name ls (Counter.value c))
    | Gauge_i g ->
      Buffer.add_string b
        (Printf.sprintf "%s%s %s\n" m.name ls (prom_float (Gauge.value g)))
    | Histogram_i h ->
      let s = hsnap h in
      let le bound = prom_labels (m.labels @ [ ("le", bound) ]) in
      let cum = ref 0 in
      Array.iteri
        (fun i bound ->
          cum := !cum + s.s_counts.(i);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" m.name (le (prom_float bound))
               !cum))
        s.s_bounds;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket%s %d\n" m.name (le "+Inf") s.s_count);
      Buffer.add_string b
        (Printf.sprintf "%s_sum%s %s\n" m.name ls (prom_float s.s_sum));
      Buffer.add_string b
        (Printf.sprintf "%s_count%s %d\n" m.name ls s.s_count)
  in
  List.iter
    (fun name ->
      let members = List.rev !(Hashtbl.find families name) in
      let help =
        List.find_map (fun m -> if m.help = "" then None else Some m.help) members
      in
      (match help with
      | Some h ->
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (prom_escape h))
      | None -> ());
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" name (kind_name (List.hd members).inst));
      List.iter emit_samples members)
    (List.rev order);
  Buffer.contents b
