(** Metrics scrape endpoint: a minimal HTTP/1.0 text server over one
    {!Metrics.t} registry.

    One thread accepts, one short-lived thread answers each request,
    responses are close-delimited with a [Content-Length]. Served
    paths:

    - [/metrics] — Prometheus text exposition ({!Metrics.to_prometheus})
    - [/metrics.json] (alias [/json]) — JSON snapshot ({!Metrics.to_json})
    - [/] — plain-text index
    - anything else — 404

    Starting an endpoint registers [genas_build_info] (constant 1,
    labels [node]/[ocaml]) and [genas_uptime_seconds] (refreshed at
    each request) into the registry, so every scrape carries the
    node's identity and age. *)

type t

val start : ?node:string -> metrics:Metrics.t -> Unix.sockaddr -> t
(** Bind, listen, and serve in the background. A stale Unix-domain
    socket file is unlinked first; TCP sockets set [SO_REUSEADDR].
    [node] labels the build-info/uptime instruments (default
    ["node"]).

    @raise Unix.Unix_error if the address cannot be bound. *)

val addr : t -> Unix.sockaddr
(** The actually bound address ([getsockname]), so [tcp:...:0] callers
    can learn their port. *)

val stop : t -> unit
(** Shut the listener down, join the acceptor, close the socket, and
    unlink a Unix-domain path. Idempotent. *)

val get : Unix.sockaddr -> path:string -> (int * string, string) result
(** Curl-free one-shot client for tests and the CLI:
    [get addr ~path] connects, issues [GET path HTTP/1.0], and returns
    [(status code, body)] — or [Error] with the socket failure. *)
