module Prng = Genas_prng.Prng

type status = Ok | Error of string

type span = {
  span_id : int;
  parent : int;  (** -1 for the root span *)
  span_name : string;
  depth : int;
  start_ns : int64;
  mutable end_ns : int64;  (** [Int64.min_int] while the span is open *)
  mutable status : status;
  mutable attrs : (string * string) list;  (** reverse insertion order *)
}

type path = {
  path_nodes : int array;
  path_levels : int array;
  path_edges : int array;
  path_comparisons : int array;
  path_matched : int array;
}

type trace = {
  trace_id : int;
  root_name : string;
  mutable spans : span list;  (** reverse start order *)
  mutable span_count : int;
  mutable path : path option;
}

type instruments = {
  traces_total : Metrics.counter;
  spans_total : Metrics.counter;
  span_errors_total : Metrics.counter;
  evicted_total : Metrics.counter;
  registry : Metrics.t;
  by_name : (string, Metrics.histogram) Hashtbl.t;
}

type t = {
  sample : float;
  rng : Prng.t;
  capacity : int;
  ring : trace option array;
  mutable ring_next : int;
  mutable started : int;
  mutable sampled : int;
  mutable completed : int;
  mutable evicted : int;
  mutable current : trace option;
  mutable stack : span list;
  mutable next_trace_id : int;
  mutable last_dump : string option;
  on_dump : (string -> unit) option;
  instruments : instruments option;
}

let create ?(sample = 1.0) ?(capacity = 16) ?metrics ?on_dump ~seed () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  if not (Float.is_finite sample) || sample < 0.0 || sample > 1.0 then
    invalid_arg "Trace.create: sample must be in [0,1]";
  let instruments =
    match metrics with
    | None -> None
    | Some registry ->
      Some
        {
          traces_total =
            Metrics.counter registry "genas_trace_traces_total"
              ~help:"sampled traces completed";
          spans_total =
            Metrics.counter registry "genas_trace_spans_total"
              ~help:"spans recorded across all sampled traces";
          span_errors_total =
            Metrics.counter registry "genas_trace_span_errors_total"
              ~help:"spans closed with an error status";
          evicted_total =
            Metrics.counter registry "genas_trace_evicted_total"
              ~help:"traces evicted from the flight-recorder ring";
          registry;
          by_name = Hashtbl.create 16;
        }
  in
  {
    sample;
    rng = Prng.create ~seed;
    capacity;
    ring = Array.make capacity None;
    ring_next = 0;
    started = 0;
    sampled = 0;
    completed = 0;
    evicted = 0;
    current = None;
    stack = [];
    next_trace_id = 0;
    last_dump = None;
    on_dump;
    instruments;
  }

let active t = t.current <> None

let sample_rate t = t.sample

let depth t = List.length t.stack

let started t = t.started

let sampled t = t.sampled

let completed t = t.completed

let evicted t = t.evicted

(* ------------------------------------------------------------------ *)
(* Span lifecycle *)

let valid_span_name name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       name

let start_span t ~name =
  match t.current with
  | None -> None
  | Some tr ->
    if not (valid_span_name name) then
      invalid_arg (Printf.sprintf "Trace: malformed span name %S" name);
    let parent = match t.stack with [] -> -1 | s :: _ -> s.span_id in
    let span =
      {
        span_id = tr.span_count;
        parent;
        span_name = name;
        depth = List.length t.stack;
        start_ns = Clock.now_ns ();
        end_ns = Int64.min_int;
        status = Ok;
        attrs = [];
      }
    in
    tr.spans <- span :: tr.spans;
    tr.span_count <- tr.span_count + 1;
    t.stack <- span :: t.stack;
    Some span

let span_duration_buckets =
  (* 100 ns .. 10 s; traces time whole publishes including journal
     fsyncs, so the range extends past the metrics default. *)
  [|
    100.; 250.; 500.; 1e3; 2.5e3; 5e3; 1e4; 2.5e4; 5e4; 1e5; 2.5e5; 5e5; 1e6;
    2.5e6; 5e6; 1e7; 1e8; 1e9; 1e10;
  |]

let observe_span t span =
  match t.instruments with
  | None -> ()
  | Some i ->
    Metrics.Counter.incr i.spans_total;
    (match span.status with
    | Ok -> ()
    | Error _ -> Metrics.Counter.incr i.span_errors_total);
    let h =
      match Hashtbl.find_opt i.by_name span.span_name with
      | Some h -> h
      | None ->
        let h =
          Metrics.histogram i.registry "genas_trace_span_duration_ns"
            ~help:"span durations by span name"
            ~labels:[ ("span", span.span_name) ]
            ~buckets:span_duration_buckets
        in
        Hashtbl.replace i.by_name span.span_name h;
        h
    in
    Metrics.Histogram.observe h
      (Int64.to_float (Int64.sub span.end_ns span.start_ns))

let finish_span t ?error = function
  | None -> ()
  | Some span ->
    if span.end_ns = Int64.min_int then begin
      span.end_ns <- Clock.now_ns ();
      (match error with None -> () | Some e -> span.status <- Error e);
      (* Pop down to (and including) this span; any deeper spans left
         open by a non-local exit are closed with the same moment and
         an error status so nesting depth always returns to zero. *)
      let rec pop = function
        | [] -> []
        | s :: rest when s == span -> rest
        | s :: rest ->
          s.end_ns <- span.end_ns;
          (if s.status = Ok then
             s.status <- Error "parent span closed first");
          observe_span t s;
          pop rest
      in
      t.stack <- pop t.stack;
      observe_span t span
    end

let add_attr t k v =
  match t.stack with [] -> () | s :: _ -> s.attrs <- (k, v) :: s.attrs

let attach_path t p =
  match t.current with None -> () | Some tr -> tr.path <- Some p

let current_trace_id t =
  match t.current with None -> None | Some tr -> Some tr.trace_id

(* ------------------------------------------------------------------ *)
(* Trace lifecycle *)

let complete_trace t tr =
  (match t.ring.(t.ring_next) with
  | None -> ()
  | Some _ ->
    t.evicted <- t.evicted + 1;
    (match t.instruments with
    | None -> ()
    | Some i -> Metrics.Counter.incr i.evicted_total));
  t.ring.(t.ring_next) <- Some tr;
  t.ring_next <- (t.ring_next + 1) mod t.capacity;
  t.completed <- t.completed + 1;
  (match t.instruments with
  | None -> ()
  | Some i -> Metrics.Counter.incr i.traces_total);
  t.current <- None;
  t.stack <- []

let with_span t ~name f =
  match start_span t ~name with
  | None -> f ()
  | Some _ as s -> (
    match f () with
    | v ->
      finish_span t s;
      v
    | exception exn ->
      finish_span t ~error:(Printexc.to_string exn) s;
      raise exn)

let sample_decision t =
  t.started <- t.started + 1;
  if t.sample >= 1.0 then true
  else if t.sample <= 0.0 then false
  else Prng.float t.rng ~bound:1.0 < t.sample

let with_trace t ~name f =
  if active t then
    (* A trace is already open (e.g. a broker publish inside a routed
       hop): nest instead of starting a second root. *)
    with_span t ~name f
  else if not (sample_decision t) then f ()
  else begin
    t.sampled <- t.sampled + 1;
    let tr =
      {
        trace_id = t.next_trace_id;
        root_name = name;
        spans = [];
        span_count = 0;
        path = None;
      }
    in
    t.next_trace_id <- t.next_trace_id + 1;
    t.current <- Some tr;
    let root = start_span t ~name in
    match f () with
    | v ->
      finish_span t root;
      complete_trace t tr;
      v
    | exception exn ->
      finish_span t ~error:(Printexc.to_string exn) root;
      complete_trace t tr;
      raise exn
  end

(* Ring contents, oldest first. *)
let traces t =
  let grab i =
    t.ring.((t.ring_next + i) mod t.capacity)
  in
  List.filter_map grab (List.init t.capacity Fun.id)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

let span_list tr = List.rev tr.spans

let chrome_events ?base traces =
  (* Normalize timestamps to the earliest span start so same-seed runs
     under a deterministic clock are byte-identical. *)
  let base =
    match base with
    | Some b -> b
    | None ->
      List.fold_left
        (fun acc tr ->
          List.fold_left
            (fun acc s -> if s.start_ns < acc then s.start_ns else acc)
            acc (span_list tr))
        Int64.max_int traces
  in
  let us ns = Int64.to_float (Int64.sub ns base) /. 1000.0 in
  let span_event tr s =
    let dur =
      if s.end_ns = Int64.min_int then 0.0
      else Int64.to_float (Int64.sub s.end_ns s.start_ns) /. 1000.0
    in
    let args =
      [ ("trace_id", Json.Int tr.trace_id); ("span_id", Json.Int s.span_id) ]
      @ (match s.status with
        | Ok -> []
        | Error e -> [ ("error", Json.Str e) ])
      @ List.rev_map (fun (k, v) -> (k, Json.Str v)) s.attrs
    in
    Json.Obj
      [
        ("name", Json.Str s.span_name);
        ("cat", Json.Str "genas");
        ("ph", Json.Str "X");
        ("ts", Json.number (us s.start_ns));
        ("dur", Json.number dur);
        ("pid", Json.Int 1);
        ("tid", Json.Int (tr.trace_id + 1));
        ("args", Json.Obj args);
      ]
  in
  let ints a = String.concat ">" (List.map string_of_int (Array.to_list a)) in
  let edge_label = function
    | -3 -> "leaf"
    | -2 -> "reject"
    | -1 -> "rest"
    | e -> "e" ^ string_of_int e
  in
  let path_event tr p =
    let root_ts =
      match span_list tr with [] -> 0.0 | s :: _ -> us s.start_ns
    in
    Json.Obj
      [
        ("name", Json.Str "matcher.path");
        ("cat", Json.Str "genas");
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("ts", Json.number root_ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int (tr.trace_id + 1));
        ( "args",
          Json.Obj
            [
              ("trace_id", Json.Int tr.trace_id);
              ("nodes", Json.Str (ints p.path_nodes));
              ("levels", Json.Str (ints p.path_levels));
              ( "edges",
                Json.Str
                  (String.concat ">"
                     (List.map edge_label (Array.to_list p.path_edges))) );
              ("comparisons", Json.Str (ints p.path_comparisons));
              ("matched", Json.Str (ints p.path_matched));
            ] );
      ]
  in
  List.concat_map
    (fun tr ->
      let spans = List.map (span_event tr) (span_list tr) in
      match tr.path with
      | None -> spans
      | Some p -> spans @ [ path_event tr p ])
    traces

let to_chrome t =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (chrome_events (traces t)));
         ("displayTimeUnit", Json.Str "ns");
       ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Flight-recorder dump *)

let status_label = function Ok -> "ok" | Error e -> "error: " ^ e

let dump t =
  let b = Buffer.create 1024 in
  let held = List.length (traces t) in
  Buffer.add_string b
    (Printf.sprintf
       "flight recorder: %d/%d trace(s) held, %d evicted, %d started, %d \
        sampled\n"
       held t.capacity t.evicted t.started t.sampled);
  let dump_trace ~in_flight tr =
    let spans = span_list tr in
    let root_start =
      match spans with [] -> 0L | s :: _ -> s.start_ns
    in
    Buffer.add_string b
      (Printf.sprintf "trace %d %s: %d span(s)%s\n" tr.trace_id tr.root_name
         tr.span_count
         (if in_flight then " (in flight)" else ""));
    List.iter
      (fun s ->
        let rel = Int64.sub s.start_ns root_start in
        let dur =
          if s.end_ns = Int64.min_int then "open"
          else Printf.sprintf "%Ldns" (Int64.sub s.end_ns s.start_ns)
        in
        let attrs =
          match List.rev s.attrs with
          | [] -> ""
          | kvs ->
            " ("
            ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
            ^ ")"
        in
        Buffer.add_string b
          (Printf.sprintf "%s[%d] %s +%Ldns %s %s%s\n"
             (String.make ((s.depth + 1) * 2) ' ')
             s.span_id s.span_name rel dur (status_label s.status) attrs))
      spans;
    match tr.path with
    | None -> ()
    | Some p ->
      let ints a =
        String.concat ">" (List.map string_of_int (Array.to_list a))
      in
      let edge = function
        | -3 -> "leaf"
        | -2 -> "reject"
        | -1 -> "rest"
        | e -> "e" ^ string_of_int e
      in
      Buffer.add_string b
        (Printf.sprintf "  path: nodes %s, edges %s, comparisons %s, matched {%s}\n"
           (ints p.path_nodes)
           (String.concat ">" (List.map edge (Array.to_list p.path_edges)))
           (ints p.path_comparisons)
           (String.concat ","
              (List.map string_of_int (Array.to_list p.path_matched))))
  in
  List.iter (dump_trace ~in_flight:false) (traces t);
  (match t.current with
  | None -> ()
  | Some tr -> dump_trace ~in_flight:true tr);
  Buffer.contents b

let record_crash t ~reason =
  let text =
    Printf.sprintf "=== flight recorder dump (%s) ===\n%s" reason (dump t)
  in
  t.last_dump <- Some text;
  (match t.on_dump with None -> () | Some f -> f text);
  text

let last_dump t = t.last_dump
