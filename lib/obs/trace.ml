module Prng = Genas_prng.Prng

type status = Ok | Error of string

type span = {
  span_id : int;
  parent : int;  (** -1 for the root span *)
  span_name : string;
  depth : int;
  start_ns : int64;
  mutable end_ns : int64;  (** [Int64.min_int] while the span is open *)
  mutable status : status;
  mutable attrs : (string * string) list;  (** reverse insertion order *)
}

type path = {
  path_nodes : int array;
  path_levels : int array;
  path_edges : int array;
  path_comparisons : int array;
  path_matched : int array;
}

type trace = {
  trace_id : int;
  root_name : string;
  mutable spans : span list;  (** reverse start order *)
  mutable span_count : int;
  mutable path : path option;
  remote : (string * int) option;
      (** [(origin node, parent span id)] when the trace id was adopted
          from a wire context rather than drawn locally *)
}

type instruments = {
  traces_total : Metrics.counter;
  spans_total : Metrics.counter;
  span_errors_total : Metrics.counter;
  evicted_total : Metrics.counter;
  dropped_spans_total : Metrics.counter;
  registry : Metrics.t;
  by_name : (string, Metrics.histogram) Hashtbl.t;
}

type t = {
  sample : float;
  rng : Prng.t;
  capacity : int;
  clock : unit -> int64;
  ring : trace option array;
  mutable ring_next : int;
  mutable started : int;
  mutable sampled : int;
  mutable completed : int;
  mutable evicted : int;
  mutable dropped : int;
  mutable current : trace option;
  mutable stack : span list;
  mutable next_trace_id : int;
  mutable last_dump : string option;
  on_dump : (string -> unit) option;
  instruments : instruments option;
  (* Serializes every state transition (never held across a user
     callback, so nested with_span re-entry cannot deadlock): one
     tracer may be shared by a server's connection threads, the
     monitor, and a client ticker. *)
  mu : Mutex.t;
}

let create ?(sample = 1.0) ?(capacity = 16) ?metrics ?on_dump ?clock ~seed () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  if not (Float.is_finite sample) || sample < 0.0 || sample > 1.0 then
    invalid_arg "Trace.create: sample must be in [0,1]";
  let instruments =
    match metrics with
    | None -> None
    | Some registry ->
      Some
        {
          traces_total =
            Metrics.counter registry "genas_trace_traces_total"
              ~help:"sampled traces completed";
          spans_total =
            Metrics.counter registry "genas_trace_spans_total"
              ~help:"spans recorded across all sampled traces";
          span_errors_total =
            Metrics.counter registry "genas_trace_span_errors_total"
              ~help:"spans closed with an error status";
          evicted_total =
            Metrics.counter registry "genas_trace_evicted_total"
              ~help:"traces evicted from the flight-recorder ring";
          dropped_spans_total =
            Metrics.counter registry "genas_trace_dropped_spans_total"
              ~help:
                "spans overwritten unexported when the flight-recorder ring \
                 evicted their trace";
          registry;
          by_name = Hashtbl.create 16;
        }
  in
  {
    sample;
    rng = Prng.create ~seed;
    capacity;
    clock = (match clock with Some c -> c | None -> Clock.now_ns);
    ring = Array.make capacity None;
    ring_next = 0;
    started = 0;
    sampled = 0;
    completed = 0;
    evicted = 0;
    dropped = 0;
    current = None;
    stack = [];
    next_trace_id = 0;
    last_dump = None;
    on_dump;
    instruments;
    mu = Mutex.create ();
  }

let with_mu t f = Mutex.protect t.mu f

let active t = t.current <> None

let sample_rate t = t.sample

let depth t = with_mu t (fun () -> List.length t.stack)

let started t = t.started

let sampled t = t.sampled

let completed t = t.completed

let evicted t = t.evicted

let dropped_spans t = t.dropped

(* ------------------------------------------------------------------ *)
(* Span lifecycle *)

let valid_span_name name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       name

let start_span_locked t ~name =
  match t.current with
  | None -> None
  | Some tr ->
    if not (valid_span_name name) then
      invalid_arg (Printf.sprintf "Trace: malformed span name %S" name);
    let parent = match t.stack with [] -> -1 | s :: _ -> s.span_id in
    let span =
      {
        span_id = tr.span_count;
        parent;
        span_name = name;
        depth = List.length t.stack;
        start_ns = t.clock ();
        end_ns = Int64.min_int;
        status = Ok;
        attrs = [];
      }
    in
    tr.spans <- span :: tr.spans;
    tr.span_count <- tr.span_count + 1;
    t.stack <- span :: t.stack;
    Some span

let start_span t ~name = with_mu t (fun () -> start_span_locked t ~name)

let span_duration_buckets =
  (* 100 ns .. 10 s; traces time whole publishes including journal
     fsyncs, so the range extends past the metrics default. *)
  [|
    100.; 250.; 500.; 1e3; 2.5e3; 5e3; 1e4; 2.5e4; 5e4; 1e5; 2.5e5; 5e5; 1e6;
    2.5e6; 5e6; 1e7; 1e8; 1e9; 1e10;
  |]

let observe_span t span =
  match t.instruments with
  | None -> ()
  | Some i ->
    Metrics.Counter.incr i.spans_total;
    (match span.status with
    | Ok -> ()
    | Error _ -> Metrics.Counter.incr i.span_errors_total);
    let h =
      match Hashtbl.find_opt i.by_name span.span_name with
      | Some h -> h
      | None ->
        let h =
          Metrics.histogram i.registry "genas_trace_span_duration_ns"
            ~help:"span durations by span name"
            ~labels:[ ("span", span.span_name) ]
            ~buckets:span_duration_buckets
        in
        Hashtbl.replace i.by_name span.span_name h;
        h
    in
    Metrics.Histogram.observe h
      (Int64.to_float (Int64.sub span.end_ns span.start_ns))

let finish_span_locked t ?error = function
  | None -> ()
  | Some span ->
    if span.end_ns = Int64.min_int then begin
      span.end_ns <- t.clock ();
      (match error with None -> () | Some e -> span.status <- Error e);
      (* Pop down to (and including) this span; any deeper spans left
         open by a non-local exit are closed with the same moment and
         an error status so nesting depth always returns to zero. *)
      let rec pop = function
        | [] -> []
        | s :: rest when s == span -> rest
        | s :: rest ->
          s.end_ns <- span.end_ns;
          (if s.status = Ok then
             s.status <- Error "parent span closed first");
          observe_span t s;
          pop rest
      in
      t.stack <- pop t.stack;
      observe_span t span
    end

let finish_span t ?error s = with_mu t (fun () -> finish_span_locked t ?error s)

let add_attr t k v =
  with_mu t (fun () ->
      match t.stack with [] -> () | s :: _ -> s.attrs <- (k, v) :: s.attrs)

let attach_path t p =
  with_mu t (fun () ->
      match t.current with None -> () | Some tr -> tr.path <- Some p)

let current_trace_id t =
  match t.current with None -> None | Some tr -> Some tr.trace_id

let context t =
  with_mu t (fun () ->
      match t.current with
      | None -> None
      | Some tr ->
        let span_id = match t.stack with [] -> -1 | s :: _ -> s.span_id in
        Some (tr.trace_id, span_id))

(* ------------------------------------------------------------------ *)
(* Trace lifecycle *)

let complete_trace_locked t tr =
  (match t.ring.(t.ring_next) with
  | None -> ()
  | Some old ->
    t.evicted <- t.evicted + 1;
    t.dropped <- t.dropped + old.span_count;
    (match t.instruments with
    | None -> ()
    | Some i ->
      Metrics.Counter.incr i.evicted_total;
      Metrics.Counter.add i.dropped_spans_total old.span_count));
  t.ring.(t.ring_next) <- Some tr;
  t.ring_next <- (t.ring_next + 1) mod t.capacity;
  t.completed <- t.completed + 1;
  (match t.instruments with
  | None -> ()
  | Some i -> Metrics.Counter.incr i.traces_total);
  t.current <- None;
  t.stack <- []

let with_span t ~name f =
  match start_span t ~name with
  | None -> f ()
  | Some _ as s -> (
    match f () with
    | v ->
      finish_span t s;
      v
    | exception exn ->
      finish_span t ~error:(Printexc.to_string exn) s;
      raise exn)

let sample_decision t =
  t.started <- t.started + 1;
  if t.sample >= 1.0 then true
  else if t.sample <= 0.0 then false
  else Prng.float t.rng ~bound:1.0 < t.sample

(* Close a root opened by with_trace/with_remote_trace: finish + land
   in the ring as one locked transition. *)
let run_root t root tr f =
  match f () with
  | v ->
    with_mu t (fun () ->
        finish_span_locked t root;
        complete_trace_locked t tr);
    v
  | exception exn ->
    with_mu t (fun () ->
        finish_span_locked t ~error:(Printexc.to_string exn) root;
        complete_trace_locked t tr);
    raise exn

let with_trace t ~name f =
  let action =
    with_mu t (fun () ->
        if t.current <> None then
          (* A trace is already open (e.g. a broker publish inside a
             routed hop): nest instead of starting a second root. *)
          `Nest
        else if not (sample_decision t) then `Skip
        else begin
          t.sampled <- t.sampled + 1;
          let tr =
            {
              trace_id = t.next_trace_id;
              root_name = name;
              spans = [];
              span_count = 0;
              path = None;
              remote = None;
            }
          in
          t.next_trace_id <- t.next_trace_id + 1;
          t.current <- Some tr;
          `Root (start_span_locked t ~name, tr)
        end)
  in
  match action with
  | `Nest -> with_span t ~name f
  | `Skip -> f ()
  | `Root (root, tr) -> run_root t root tr f

let with_remote_trace t ~name ~origin ctx f =
  match ctx with
  | None -> with_trace t ~name f
  | Some (trace_id, parent_span) ->
    let action =
      with_mu t (fun () ->
          if t.current <> None then `Nest
          else begin
            (* The upstream tracer already took the sampling decision
               when it attached the context; adopting never consumes a
               local PRNG draw, so the decision stream stays aligned
               with purely local traffic. *)
            t.started <- t.started + 1;
            t.sampled <- t.sampled + 1;
            let tr =
              {
                trace_id;
                root_name = name;
                spans = [];
                span_count = 0;
                path = None;
                remote = Some (origin, parent_span);
              }
            in
            t.current <- Some tr;
            `Root (start_span_locked t ~name, tr)
          end)
    in
    (match action with
    | `Nest -> with_span t ~name f
    | `Root (root, tr) -> run_root t root tr f)

(* Ring contents, oldest first. *)
let traces_locked t =
  let grab i =
    t.ring.((t.ring_next + i) mod t.capacity)
  in
  List.filter_map grab (List.init t.capacity Fun.id)

let traces t = with_mu t (fun () -> traces_locked t)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

let span_list tr = List.rev tr.spans

let chrome_base traces =
  List.fold_left
    (fun acc tr ->
      List.fold_left
        (fun acc s -> if s.start_ns < acc then s.start_ns else acc)
        acc (span_list tr))
    Int64.max_int traces

let span_args ?node tr s =
  [ ("trace_id", Json.Int tr.trace_id); ("span_id", Json.Int s.span_id);
    ("parent", Json.Int s.parent) ]
  @ (match node with None -> [] | Some n -> [ ("node", Json.Str n) ])
  @ (match tr.remote with
    | Some (rnode, rspan) when s.parent = -1 ->
      [ ("remote_node", Json.Str rnode); ("remote_parent", Json.Int rspan) ]
    | _ -> [])
  @ (match s.status with Ok -> [] | Error e -> [ ("error", Json.Str e) ])
  @ List.rev_map (fun (k, v) -> (k, Json.Str v)) s.attrs

let span_event ?node ~pid ~us tr s =
  let dur =
    if s.end_ns = Int64.min_int then 0.0
    else Int64.to_float (Int64.sub s.end_ns s.start_ns) /. 1000.0
  in
  Json.Obj
    [
      ("name", Json.Str s.span_name);
      ("cat", Json.Str "genas");
      ("ph", Json.Str "X");
      ("ts", Json.number (us s.start_ns));
      ("dur", Json.number dur);
      ("pid", Json.Int pid);
      ("tid", Json.Int (tr.trace_id + 1));
      ("args", Json.Obj (span_args ?node tr s));
    ]

let edge_label = function
  | -3 -> "leaf"
  | -2 -> "reject"
  | -1 -> "rest"
  | e -> "e" ^ string_of_int e

let path_event ~pid ~us tr p =
  let ints a = String.concat ">" (List.map string_of_int (Array.to_list a)) in
  let root_ts = match span_list tr with [] -> 0.0 | s :: _ -> us s.start_ns in
  Json.Obj
    [
      ("name", Json.Str "matcher.path");
      ("cat", Json.Str "genas");
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("ts", Json.number root_ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int (tr.trace_id + 1));
      ( "args",
        Json.Obj
          [
            ("trace_id", Json.Int tr.trace_id);
            ("nodes", Json.Str (ints p.path_nodes));
            ("levels", Json.Str (ints p.path_levels));
            ( "edges",
              Json.Str
                (String.concat ">"
                   (List.map edge_label (Array.to_list p.path_edges))) );
            ("comparisons", Json.Str (ints p.path_comparisons));
            ("matched", Json.Str (ints p.path_matched));
          ] );
    ]

let chrome_events ?base traces =
  (* Normalize timestamps to the earliest span start so same-seed runs
     under a deterministic clock are byte-identical. *)
  let base = match base with Some b -> b | None -> chrome_base traces in
  let us ns = Int64.to_float (Int64.sub ns base) /. 1000.0 in
  List.concat_map
    (fun tr ->
      let spans = List.map (span_event ~pid:1 ~us tr) (span_list tr) in
      match tr.path with
      | None -> spans
      | Some p -> spans @ [ path_event ~pid:1 ~us tr p ])
    traces

let to_chrome t =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (chrome_events (traces t)));
         ("displayTimeUnit", Json.Str "ns");
       ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Per-node dump export and the cross-node merge *)

(* Line-based, versioned text form of the flight-recorder ring —
   everything the merge needs to rebuild spans on another process.
   Strings travel as OCaml %S literals (round-tripped by Scanf %S), so
   attrs and error texts survive arbitrary bytes. *)

let export_version = 1

let ints_csv a =
  if Array.length a = 0 then "-"
  else String.concat "," (List.map string_of_int (Array.to_list a))

let csv_ints s =
  if s = "-" then [||]
  else Array.of_list (List.map int_of_string (String.split_on_char ',' s))

let export t ~node =
  with_mu t @@ fun () ->
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "genas-trace-dump %d\n" export_version);
  Buffer.add_string b (Printf.sprintf "node %S\n" node);
  List.iter
    (fun tr ->
      (match tr.remote with
      | None ->
        Buffer.add_string b
          (Printf.sprintf "trace %d %S local\n" tr.trace_id tr.root_name)
      | Some (rnode, rspan) ->
        Buffer.add_string b
          (Printf.sprintf "trace %d %S remote %S %d\n" tr.trace_id
             tr.root_name rnode rspan));
      List.iter
        (fun s ->
          (match s.status with
          | Ok ->
            Buffer.add_string b
              (Printf.sprintf "span %d %d %d %Ld %Ld %S ok\n" s.span_id
                 s.parent s.depth s.start_ns s.end_ns s.span_name)
          | Error e ->
            Buffer.add_string b
              (Printf.sprintf "span %d %d %d %Ld %Ld %S error %S\n" s.span_id
                 s.parent s.depth s.start_ns s.end_ns s.span_name e));
          List.iter
            (fun (k, v) ->
              Buffer.add_string b (Printf.sprintf "attr %S %S\n" k v))
            (List.rev s.attrs))
        (span_list tr);
      match tr.path with
      | None -> ()
      | Some p ->
        Buffer.add_string b
          (Printf.sprintf "path %s %s %s %s %s\n" (ints_csv p.path_nodes)
             (ints_csv p.path_levels) (ints_csv p.path_edges)
             (ints_csv p.path_comparisons) (ints_csv p.path_matched)))
    (traces_locked t);
  Buffer.contents b

type node_dump = { nd_name : string; nd_traces : trace list }

let parse_dump text =
  let fail line msg =
    invalid_arg (Printf.sprintf "Trace.merge_dumps: %s in line %S" msg line)
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let name = ref "" in
  let traces = ref [] (* reverse order *) in
  let cur = ref None (* trace being filled *) in
  let close_cur () =
    match !cur with
    | None -> ()
    | Some tr ->
      traces := tr :: !traces;
      cur := None
  in
  let header = ref false in
  List.iter
    (fun line ->
      if not !header then begin
        (try
           Scanf.sscanf line "genas-trace-dump %d%!" (fun v ->
               if v <> export_version then
                 fail line
                   (Printf.sprintf "unsupported dump version %d (expected %d)" v
                      export_version))
         with Scanf.Scan_failure _ | Failure _ | End_of_file ->
           fail line "missing genas-trace-dump header");
        header := true
      end
      else if String.length line >= 5 && String.sub line 0 5 = "node " then
        name := Scanf.sscanf line "node %S%!" Fun.id
      else if String.length line >= 6 && String.sub line 0 6 = "trace " then begin
        close_cur ();
        let tr =
          try
            Scanf.sscanf line "trace %d %S local%!" (fun id n ->
                {
                  trace_id = id;
                  root_name = n;
                  spans = [];
                  span_count = 0;
                  path = None;
                  remote = None;
                })
          with Scanf.Scan_failure _ | End_of_file -> (
            try
              Scanf.sscanf line "trace %d %S remote %S %d%!"
                (fun id n rnode rspan ->
                  {
                    trace_id = id;
                    root_name = n;
                    spans = [];
                    span_count = 0;
                    path = None;
                    remote = Some (rnode, rspan);
                  })
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              fail line "malformed trace line")
        in
        cur := Some tr
      end
      else begin
        let tr =
          match !cur with
          | Some tr -> tr
          | None -> fail line "span/attr/path line outside a trace"
        in
        if String.length line >= 5 && String.sub line 0 5 = "span " then begin
          let s =
            try
              Scanf.sscanf line "span %d %d %d %Ld %Ld %S ok%!"
                (fun id parent depth st en n ->
                  {
                    span_id = id;
                    parent;
                    span_name = n;
                    depth;
                    start_ns = st;
                    end_ns = en;
                    status = Ok;
                    attrs = [];
                  })
            with Scanf.Scan_failure _ | End_of_file -> (
              try
                Scanf.sscanf line "span %d %d %d %Ld %Ld %S error %S%!"
                  (fun id parent depth st en n e ->
                    {
                      span_id = id;
                      parent;
                      span_name = n;
                      depth;
                      start_ns = st;
                      end_ns = en;
                      status = Error e;
                      attrs = [];
                    })
              with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                fail line "malformed span line")
          in
          tr.spans <- s :: tr.spans;
          tr.span_count <- tr.span_count + 1
        end
        else if String.length line >= 5 && String.sub line 0 5 = "attr " then begin
          match tr.spans with
          | [] -> fail line "attr line before any span"
          | s :: _ ->
            let k, v =
              try Scanf.sscanf line "attr %S %S%!" (fun k v -> (k, v))
              with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                fail line "malformed attr line"
            in
            s.attrs <- (k, v) :: s.attrs
        end
        else if String.length line >= 5 && String.sub line 0 5 = "path " then begin
          let p =
            try
              Scanf.sscanf line "path %s %s %s %s %s%!" (fun a b c d e ->
                  {
                    path_nodes = csv_ints a;
                    path_levels = csv_ints b;
                    path_edges = csv_ints c;
                    path_comparisons = csv_ints d;
                    path_matched = csv_ints e;
                  })
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              fail line "malformed path line"
          in
          tr.path <- Some p
        end
        else fail line "unrecognized line"
      end)
    lines;
  close_cur ();
  { nd_name = !name; nd_traces = List.rev !traces }

let merge_dumps dumps =
  let nodes = List.map parse_dump dumps in
  (* One Chrome pid per node (argument order, 1-based); each node's
     timestamps normalized to its own earliest span start, which lines
     the processes up without assuming any cross-host clock sync. *)
  let indexed = List.mapi (fun i nd -> (i + 1, nd)) nodes in
  let base_of nd =
    let b = chrome_base nd.nd_traces in
    if b = Int64.max_int then 0L else b
  in
  let span_events =
    List.concat_map
      (fun (pid, nd) ->
        let base = base_of nd in
        let us ns = Int64.to_float (Int64.sub ns base) /. 1000.0 in
        List.concat_map
          (fun tr ->
            let spans =
              List.map (span_event ~node:nd.nd_name ~pid ~us tr) (span_list tr)
            in
            match tr.path with
            | None -> spans
            | Some p -> spans @ [ path_event ~pid ~us tr p ])
          nd.nd_traces)
      indexed
  in
  (* Flow arrows stitching the hops: every adopted trace links its
     remote parent span (on the origin node's timeline) to its local
     root span. A context whose origin is not among the merged dumps
     just stays unlinked — the remote_node/remote_parent args still
     name it. *)
  let find_origin rnode tid rspan =
    List.find_map
      (fun (pid, nd) ->
        if nd.nd_name <> rnode then None
        else
          List.find_map
            (fun tr ->
              if tr.trace_id <> tid then None
              else
                List.find_map
                  (fun s ->
                    if s.span_id = rspan then
                      Some (pid, Int64.sub s.start_ns (base_of nd))
                    else None)
                  (span_list tr))
            nd.nd_traces)
      indexed
  in
  let next_link = ref 0 in
  let flow_events =
    List.concat_map
      (fun (pid, nd) ->
        let base = base_of nd in
        List.concat_map
          (fun tr ->
            match tr.remote with
            | None -> []
            | Some (rnode, rspan) -> (
              match find_origin rnode tr.trace_id rspan with
              | None -> []
              | Some (rpid, r_rel_ns) ->
                let root_rel =
                  match span_list tr with
                  | [] -> 0L
                  | s :: _ -> Int64.sub s.start_ns base
                in
                let id = !next_link in
                incr next_link;
                let us rel = Int64.to_float rel /. 1000.0 in
                let ev ph extra ~pid ~ts =
                  Json.Obj
                    ([
                       ("name", Json.Str "net.ctx");
                       ("cat", Json.Str "genas");
                       ("ph", Json.Str ph);
                       ("id", Json.Int id);
                       ("ts", Json.number (us ts));
                       ("pid", Json.Int pid);
                       ("tid", Json.Int (tr.trace_id + 1));
                     ]
                    @ extra)
                in
                [
                  ev "s" [] ~pid:rpid ~ts:r_rel_ns;
                  ev "f" [ ("bp", Json.Str "e") ] ~pid ~ts:root_rel;
                ]))
          nd.nd_traces)
      indexed
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (span_events @ flow_events));
         ("displayTimeUnit", Json.Str "ns");
       ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Flight-recorder dump *)

let status_label = function Ok -> "ok" | Error e -> "error: " ^ e

let dump t =
  with_mu t @@ fun () ->
  let b = Buffer.create 1024 in
  let held = List.length (traces_locked t) in
  Buffer.add_string b
    (Printf.sprintf
       "flight recorder: %d/%d trace(s) held, %d evicted, %d started, %d \
        sampled\n"
       held t.capacity t.evicted t.started t.sampled);
  let dump_trace ~in_flight tr =
    let spans = span_list tr in
    let root_start =
      match spans with [] -> 0L | s :: _ -> s.start_ns
    in
    Buffer.add_string b
      (Printf.sprintf "trace %d %s: %d span(s)%s\n" tr.trace_id tr.root_name
         tr.span_count
         (if in_flight then " (in flight)" else ""));
    List.iter
      (fun s ->
        let rel = Int64.sub s.start_ns root_start in
        let dur =
          if s.end_ns = Int64.min_int then "open"
          else Printf.sprintf "%Ldns" (Int64.sub s.end_ns s.start_ns)
        in
        let attrs =
          match List.rev s.attrs with
          | [] -> ""
          | kvs ->
            " ("
            ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
            ^ ")"
        in
        Buffer.add_string b
          (Printf.sprintf "%s[%d] %s +%Ldns %s %s%s\n"
             (String.make ((s.depth + 1) * 2) ' ')
             s.span_id s.span_name rel dur (status_label s.status) attrs))
      spans;
    match tr.path with
    | None -> ()
    | Some p ->
      let ints a =
        String.concat ">" (List.map string_of_int (Array.to_list a))
      in
      let edge = function
        | -3 -> "leaf"
        | -2 -> "reject"
        | -1 -> "rest"
        | e -> "e" ^ string_of_int e
      in
      Buffer.add_string b
        (Printf.sprintf "  path: nodes %s, edges %s, comparisons %s, matched {%s}\n"
           (ints p.path_nodes)
           (String.concat ">" (List.map edge (Array.to_list p.path_edges)))
           (ints p.path_comparisons)
           (String.concat ","
              (List.map string_of_int (Array.to_list p.path_matched))))
  in
  List.iter (dump_trace ~in_flight:false) (traces_locked t);
  (match t.current with
  | None -> ()
  | Some tr -> dump_trace ~in_flight:true tr);
  Buffer.contents b

let record_crash t ~reason =
  let text =
    Printf.sprintf "=== flight recorder dump (%s) ===\n%s" reason (dump t)
  in
  t.last_dump <- Some text;
  (match t.on_dump with None -> () | Some f -> f text);
  text

let last_dump t = t.last_dump
