(** Minimal JSON construction and validation.

    The metrics exporter builds documents from this tree; {!number}
    maps every non-finite float to [Null], so no [nan]/[inf] token can
    reach serialized output. The validator is a strict RFC 8259 syntax
    checker used by tests and by [genas_cli jsoncheck]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** must be finite; use {!number} to guard *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val number : float -> t
(** [Float v] when [v] is finite, [Null] otherwise. *)

val to_string : ?indent:int -> t -> string
(** Serialize; [indent] (default 2) pretty-prints, [0] is compact.

    @raise Invalid_argument on a non-finite [Float] (guard with
    {!number}). *)

val validate : string -> (unit, string) result
(** Check that the string is exactly one valid JSON value (trailing
    whitespace allowed). Errors carry a byte offset. *)
