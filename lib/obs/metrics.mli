(** Metrics registry: counters, gauges, fixed-bucket histograms.

    A registry is an insertion-ordered collection of named instruments.
    Instruments are identified by (name, labels): registering the same
    identity again returns the existing instrument (so independent
    components can share a registry), while re-registering a name with
    a different instrument kind raises.

    Hot-path cost: an instrument handle is resolved once at component
    construction; [Counter.incr] is one atomic CAS, [Histogram.observe]
    a short mutex-guarded update. Components take the registry as an
    optional argument — with [?metrics:None] they must not touch this
    module at all, keeping the uninstrumented path allocation-free.

    Thread safety: every operation is safe under concurrent use from
    threads and domains. Counters update by compare-and-swap (the
    [max_int] saturation survives contention), gauges are single
    atomic cells, and each histogram serializes its five-field update
    under a private mutex; exporters and accessors read consistent
    per-instrument snapshots.

    Exporters: {!to_json} (canonical JSON snapshot with p50/p90/p99
    histogram readouts) and {!to_prometheus} (Prometheus text format
    with cumulative buckets). Neither can emit a [nan]/[inf] token:
    non-finite values export as [null] (JSON) or [0] (Prometheus). *)

type t
(** A registry. *)

type counter
(** Monotonic integer counter. Saturates at [max_int] instead of
    wrapping, so exported values never decrease. *)

type gauge
(** A float that can go up and down. *)

type histogram
(** Fixed-bucket histogram: per-bucket observation counts plus sum,
    count, min, max. *)

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or look up) a counter. Names must match
    [[a-zA-Z_][a-zA-Z0-9_]*].

    @raise Invalid_argument on a malformed name, or if the (name,
    labels) identity is already registered as a different kind. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** [buckets] are the finite upper bounds (strictly increasing); an
    implicit overflow bucket catches everything above the last bound.
    An observation [v] lands in the first bucket with [v <= bound].
    Defaults to {!default_latency_buckets}. Bounds are fixed at
    registration: a second registration of the same identity returns
    the existing histogram and ignores [buckets]. *)

val default_latency_buckets : float array
(** Exponential nanosecond bounds, 100 ns … 1 s. *)

val exponential_buckets : start:float -> factor:float -> count:int -> float array
(** [start * factor^i] for [i < count].

    @raise Invalid_argument unless [start > 0], [factor > 1],
    [count >= 1]. *)

module Counter : sig
  val incr : counter -> unit

  val add : counter -> int -> unit
  (** @raise Invalid_argument on a negative amount. *)

  val value : counter -> int
end

module Gauge : sig
  val set : gauge -> float -> unit

  val value : gauge -> float
end

module Histogram : sig
  val observe : histogram -> float -> unit

  val count : histogram -> int

  val sum : histogram -> float

  val buckets : histogram -> (float * int) array
  (** (upper bound, non-cumulative count) per finite bucket. *)

  val overflow : histogram -> int
  (** Observations above the last finite bound. *)

  val percentile : histogram -> float -> float
  (** [percentile h q] for [q] in [0, 1]: the bucket-interpolated
      estimate, clamped to the observed [min, max] range. [nan] on an
      empty histogram (exporters render it as [null]).

      @raise Invalid_argument if [q] is outside [0, 1]. *)
end

val counters : t -> (string * int) list
(** Every registered counter as [("name{label=\"v\",...}", value)]
    (Prometheus-style series names, registration order) — the compact
    form a mesh [Status] frame carries. *)

val to_json : t -> string
(** Canonical JSON snapshot:
    [{"counters": [...], "gauges": [...], "histograms": [...]}] in
    registration order. Histograms carry count, sum, min, max,
    p50/p90/p99, per-bucket counts, and the overflow count. Always
    valid JSON ({!Json.validate} accepts it); non-finite values are
    [null]. *)

val to_prometheus : t -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers,
    cumulative [_bucket{le="..."}] series with a [+Inf] bucket, [_sum]
    and [_count] per histogram. *)
