(** Streaming histogram estimation of attribute distributions.

    The adaptive algorithm "has to maintain a history of events in
    order to determine the event distribution" (§5). An estimator is a
    fixed-bin streaming histogram over one axis; [estimate] converts
    the current counts into a {!Dist.t} usable by the selectivity
    measures. Discrete axes with at most [bins] inhabited points are
    counted exactly per point. *)

type t

val create : ?bins:int -> Genas_model.Axis.t -> t
(** [bins] defaults to 64. *)

val axis : t -> Genas_model.Axis.t

val add : t -> float -> unit
(** Record one observed coordinate. Out-of-axis coordinates are
    ignored (counted in [dropped]). *)

val count : t -> int
(** Number of recorded observations. *)

val dropped : t -> int

val reset : t -> unit

val merge_into : from:t -> t -> unit
(** [merge_into ~from t] adds [from]'s observation counts into [t],
    leaving [from] untouched. Both estimators must have been created
    over the same axis with the same bin count (true for any two
    histograms of the same attribute), so a rebuilt statistics object
    can inherit the history its predecessor learned.

    @raise Invalid_argument on mismatched axes or bin layouts. *)

val estimate : ?smoothing:float -> t -> Dist.t
(** Normalized histogram as a distribution. [smoothing] (default 0) is
    a pseudo-count added to every bin — use a small positive value to
    avoid zero-probability cells when the history is short.

    @raise Invalid_argument if no observations and [smoothing = 0]. *)

(** {1 Serialization}

    A histogram's full observable state as a plain value, for durable
    snapshots. An export is layout-checked on the way back in, so a
    journal written against one schema cannot silently corrupt an
    estimator built for another. *)

module Export : sig
  type t = {
    exact : bool;
    bins : int;
    counts : float array;
    total : int;
    dropped : int;
  }
end

val export : t -> Export.t
(** Deep copy of the current counts and counters. *)

val import : t -> Export.t -> (unit, string) result
(** Replace [t]'s state with the exported one. Fails (leaving [t]
    untouched) unless the bin layout — [bins], [exact], counts length —
    matches exactly. *)

val of_export : Genas_model.Axis.t -> Export.t -> (t, string) result
(** Rebuild a fresh estimator over [axis] holding the exported state.
    Fails when the export's layout is not the one [create] would derive
    for that axis and bin count. *)

val l1_on_grid : ?bins:int -> Dist.t -> Dist.t -> float
(** L1 distance between two distributions on a common axis, measured
    on an equal-width grid ([bins] defaults to 64). Ranges over
    [[0, 2]]; the adaptive engine treats it as the drift signal.

    @raise Invalid_argument on mismatched axes. *)
