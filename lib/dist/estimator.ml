module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval

type t = {
  axis : Axis.t;
  exact : bool;  (** one bin per inhabited discrete point *)
  bins : int;
  counts : float array;
  mutable total : int;
  mutable dropped : int;
}

let create ?(bins = 64) axis =
  if bins <= 0 then invalid_arg "Estimator.create: bins must be positive";
  let exact = axis.Axis.discrete && Axis.size axis <= float_of_int bins in
  let bins = if exact then int_of_float (Axis.size axis) else bins in
  { axis; exact; bins; counts = Array.make bins 0.0; total = 0; dropped = 0 }

let axis t = t.axis

let bin_of t x =
  if t.exact then int_of_float (x -. t.axis.Axis.lo)
  else begin
    let lo = t.axis.Axis.lo and hi = t.axis.Axis.hi in
    if hi <= lo then 0
    else
      let f = (x -. lo) /. (hi -. lo) in
      Stdlib.min (t.bins - 1) (int_of_float (f *. float_of_int t.bins))
  end

let add t x =
  if
    x < t.axis.Axis.lo || x > t.axis.Axis.hi
    || (t.axis.Axis.discrete && Float.rem x 1.0 <> 0.0)
  then t.dropped <- t.dropped + 1
  else begin
    t.counts.(bin_of t x) <- t.counts.(bin_of t x) +. 1.0;
    t.total <- t.total + 1
  end

let count t = t.total

let dropped t = t.dropped

let reset t =
  Array.fill t.counts 0 t.bins 0.0;
  t.total <- 0;
  t.dropped <- 0

let merge_into ~from t =
  if not (Axis.equal from.axis t.axis) then
    invalid_arg "Estimator.merge_into: mismatched axes";
  if from.bins <> t.bins || from.exact <> t.exact then
    invalid_arg "Estimator.merge_into: mismatched bin layout";
  Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) +. c) from.counts;
  t.total <- t.total + from.total;
  t.dropped <- t.dropped + from.dropped

let estimate ?(smoothing = 0.0) t =
  if smoothing < 0.0 then invalid_arg "Estimator.estimate: negative smoothing";
  if t.total = 0 && smoothing = 0.0 then
    invalid_arg "Estimator.estimate: no observations";
  if t.exact then
    Dist.of_atoms t.axis
      (List.init t.bins (fun i ->
           (t.axis.Axis.lo +. float_of_int i, t.counts.(i) +. smoothing)))
  else begin
    let lo = t.axis.Axis.lo and hi = t.axis.Axis.hi in
    let width = (hi -. lo) /. float_of_int t.bins in
    let pieces =
      List.init t.bins (fun i ->
          let a = lo +. (float_of_int i *. width) in
          let b = if i = t.bins - 1 then hi else a +. width in
          ( Interval.make_exn ~hi_closed:(i = t.bins - 1) ~lo:a ~hi:b (),
            t.counts.(i) +. smoothing ))
    in
    Dist.of_pieces t.axis pieces
  end

module Export = struct
  type nonrec t = {
    exact : bool;
    bins : int;
    counts : float array;
    total : int;
    dropped : int;
  }
end

let export t =
  {
    Export.exact = t.exact;
    bins = t.bins;
    counts = Array.copy t.counts;
    total = t.total;
    dropped = t.dropped;
  }

let import t (e : Export.t) =
  if e.Export.bins <> t.bins || e.Export.exact <> t.exact then
    Error "Estimator.import: mismatched bin layout"
  else if Array.length e.Export.counts <> t.bins then
    Error "Estimator.import: counts length disagrees with bins"
  else begin
    Array.blit e.Export.counts 0 t.counts 0 t.bins;
    t.total <- e.Export.total;
    t.dropped <- e.Export.dropped;
    Ok ()
  end

let of_export axis e =
  let fresh = create ~bins:(Stdlib.max 1 e.Export.bins) axis in
  match import fresh e with
  | Ok () -> Ok fresh
  | Error _ -> Error "Estimator.of_export: layout does not fit the axis"

let l1_on_grid ?(bins = 64) a b =
  if not (Axis.equal (Dist.axis a) (Dist.axis b)) then
    invalid_arg "Estimator.l1_on_grid: mismatched axes";
  let ax = Dist.axis a in
  if ax.Axis.discrete && Axis.size ax <= float_of_int bins then begin
    let n = int_of_float (Axis.size ax) in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let p = Interval.point (ax.Axis.lo +. float_of_int i) in
      acc := !acc +. Float.abs (Dist.prob_interval a p -. Dist.prob_interval b p)
    done;
    !acc
  end
  else begin
    let lo = ax.Axis.lo and hi = ax.Axis.hi in
    let width = (hi -. lo) /. float_of_int bins in
    let acc = ref 0.0 in
    for i = 0 to bins - 1 do
      let x = lo +. (float_of_int i *. width) in
      let y = if i = bins - 1 then hi else x +. width in
      let itv = Interval.make_exn ~hi_closed:(i = bins - 1) ~lo:x ~hi:y () in
      acc := !acc +. Float.abs (Dist.prob_interval a itv -. Dist.prob_interval b itv)
    done;
    !acc
  end
