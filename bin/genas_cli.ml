(* GENAS command-line interface.

   Subcommands:
     genas figures [TARGET...]   regenerate the paper's tables/figures
     genas dists [NAME]          list the distribution catalog / show one
     genas match ...             filter an event file against a profile file
     genas plan ...              show the tree configuration the engine picks

   Schema files contain one attribute per line: "name : DOMAIN" with
   DOMAIN in int[lo,hi] | float[lo,hi] | enum{a,b,c} | bool.
   Profile files: "name : PREDICATES" in the profile language.
   Event files: one event per line ("attr = v, ...").
   Lines starting with '#' are comments. *)

module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Axis = Genas_model.Axis
module Interval = Genas_interval.Interval
module Lang = Genas_profile.Lang
module Profile_set = Genas_profile.Profile_set
module Dist = Genas_dist.Dist
module Catalog = Genas_dist.Catalog
module Decomp = Genas_filter.Decomp
module Ops = Genas_filter.Ops
module Tree = Genas_filter.Tree
module Order = Genas_filter.Order
module Stats = Genas_core.Stats
module Selectivity = Genas_core.Selectivity
module Cost = Genas_core.Cost
module Reorder = Genas_core.Reorder
module Figures = Genas_expt.Figures
module Report = Genas_expt.Report
module Workload = Genas_expt.Workload
module Store = Genas_ens.Store
module Broker = Genas_ens.Broker
module Event = Genas_model.Event
module Shape = Genas_dist.Shape
module Obs = Genas_obs

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* File loading is the library's Store format; only the profile-name
   mapping needed for output labels is recovered here.                 *)

let load_schema = Store.load_schema

let load_profiles schema path =
  let* pset = Store.load_profiles schema path in
  let names =
    Profile_set.fold pset ~init:[] ~f:(fun acc id p ->
        match p.Genas_profile.Profile.name with
        | Some n -> (id, n) :: acc
        | None -> acc)
  in
  Ok (pset, List.rev names)

let load_events schema path =
  let* events = Store.load_events schema path in
  Ok (List.map (fun e -> (Lang.event_to_string schema e, e)) events)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("genas: " ^ msg);
    exit 1

(* ------------------------------------------------------------------ *)
(* Subcommand implementations.                                         *)

let strategy_of_name = function
  | "natural" -> Ok (`Measure Selectivity.V_natural_asc)
  | "v1" | "event" -> Ok (`Measure Selectivity.V1)
  | "v2" | "profile" -> Ok (`Measure Selectivity.V2)
  | "v3" -> Ok (`Measure Selectivity.V3)
  | "binary" -> Ok `Binary
  | "hashed" -> Ok `Hashed
  | "auto" -> Ok `Auto
  | other -> Error (Printf.sprintf "unknown strategy %S" other)

let attr_choice_of_name = function
  | "natural" -> Ok Reorder.Attr_natural
  | "a1" -> Ok (Reorder.Attr_measured (Selectivity.A1, `Descending))
  | "a2" -> Ok (Reorder.Attr_measured (Selectivity.A2, `Descending))
  | "a3" -> Ok Reorder.Attr_a3
  | other -> Error (Printf.sprintf "unknown attribute measure %S" other)

let run_match schema_path profiles_path events_path strategy attr_measure
    explain =
  let schema = or_die (load_schema schema_path) in
  let pset, names = or_die (load_profiles schema profiles_path) in
  let events = or_die (load_events schema events_path) in
  let value_choice = or_die (strategy_of_name strategy) in
  let attr_choice = or_die (attr_choice_of_name attr_measure) in
  let stats = Stats.create (Decomp.build pset) in
  let tree = Reorder.build stats { Reorder.attr_choice; value_choice } in
  let ops = Ops.create () in
  List.iter
    (fun (line, event) ->
      let matched = Tree.match_event ~ops tree event in
      let labels =
        List.map
          (fun id ->
            Option.value ~default:(string_of_int id) (List.assoc_opt id names))
          matched
      in
      Printf.printf "%-50s -> %s\n" line
        (if labels = [] then "(no match)" else String.concat ", " labels);
      if explain then
        Format.printf "%a@." Genas_core.Explain.pp
          (Genas_core.Explain.trace tree event))
    events;
  Printf.printf "\n%d events, %d comparisons (%s per event)\n"
    ops.Ops.events ops.Ops.comparisons
    (Report.f2 (Ops.per_event ops))

let run_plan schema_path profiles_path event_dists =
  let schema = or_die (load_schema schema_path) in
  let pset, _names = or_die (load_profiles schema profiles_path) in
  let decomp = Decomp.build pset in
  let stats = Stats.create decomp in
  (match event_dists with
  | [] -> ()
  | names ->
    if List.length names <> Schema.arity schema then
      or_die (Error "need one event distribution per attribute");
    List.iteri
      (fun attr name ->
        let gen = Catalog.find_exn name in
        Stats.assume_event_dist stats ~attr (gen decomp.Decomp.axes.(attr)))
      names);
  Printf.printf "attributes (natural order):\n";
  Array.iter
    (fun (a : Schema.attribute) ->
      Printf.printf "  %d: %-14s %s  A1=%.3f A2=%.3f cells=%d d0-share=%.3f\n"
        a.Schema.index a.Schema.name
        (Format.asprintf "%a" Domain.pp a.Schema.domain)
        (Selectivity.attribute_selectivity stats ~attr:a.Schema.index
           Selectivity.A1)
        (Selectivity.attribute_selectivity stats ~attr:a.Schema.index
           Selectivity.A2)
        (Decomp.referenced_count decomp ~attr:a.Schema.index)
        (Decomp.d0_share decomp ~attr:a.Schema.index))
    (Schema.attributes schema);
  List.iter
    (fun (label, spec) ->
      let tree = Reorder.build stats spec in
      let r = Cost.evaluate_with_stats tree stats in
      Printf.printf
        "%-22s order=[%s]  strategies=[%s]  E[ops/event]=%.3f  E[matches]=%.3f\n"
        label
        (String.concat ";"
           (Array.to_list (Array.map string_of_int tree.Tree.config.Tree.attr_order)))
        (String.concat ";"
           (Array.to_list
              (Array.map
                 (Format.asprintf "%a" Order.pp_strategy)
                 tree.Tree.config.Tree.strategies)))
        r.Cost.per_event r.Cost.expected_matches)
    [
      ("natural/natural",
       { Reorder.attr_choice = Reorder.Attr_natural;
         value_choice = `Measure Selectivity.V_natural_asc });
      ("natural/binary",
       { Reorder.attr_choice = Reorder.Attr_natural; value_choice = `Binary });
      ("A2-desc/V1",
       { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
         value_choice = `Measure Selectivity.V1 });
      ("A2-desc/V3",
       { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
         value_choice = `Measure Selectivity.V3 });
      ("A2-desc/auto",
       { Reorder.attr_choice = Reorder.Attr_measured (Selectivity.A2, `Descending);
         value_choice = `Auto });
    ]

let run_simulate schema_path profiles_path event_dists strategy
    attr_measure events =
  let schema = or_die (load_schema schema_path) in
  let pset, _ = or_die (load_profiles schema profiles_path) in
  let value_choice = or_die (strategy_of_name strategy) in
  let attr_choice = or_die (attr_choice_of_name attr_measure) in
  let decomp = Decomp.build pset in
  let stats = Stats.create decomp in
  let n = Schema.arity schema in
  let dists =
    match event_dists with
    | [] -> Array.map (fun ax -> Dist.uniform ax) decomp.Decomp.axes
    | names ->
      if List.length names <> n then
        or_die (Error "need one --event-dist per attribute");
      Array.of_list
        (List.mapi
           (fun attr name ->
             (Catalog.find_exn name) decomp.Decomp.axes.(attr))
           names)
  in
  Array.iteri (fun attr d -> Stats.assume_event_dist stats ~attr d) dists;
  let tree = Reorder.build stats { Reorder.attr_choice; value_choice } in
  let analytic = Cost.evaluate_with_stats tree stats in
  let rng = Genas_prng.Prng.create ~seed:42 in
  let sim =
    match events with
    | Some e -> Genas_expt.Simulate.run_fixed rng tree dists ~events:e
    | None -> Genas_expt.Simulate.run rng tree dists
  in
  Printf.printf "profiles: %d   attributes: %d   strategy: %s/%s\n"
    (Profile_set.size pset) n strategy attr_measure;
  Printf.printf "analytic  (Eq. 2): %.4f ops/event, %.4f matches/event\n"
    analytic.Cost.per_event analytic.Cost.expected_matches;
  Printf.printf
    "simulated (%d events%s): %.4f ops/event (95%% CI ±%.4f), %.4f \
     matches/event\n"
    sim.Genas_expt.Simulate.events
    (if sim.Genas_expt.Simulate.converged then ", converged" else ", cap hit")
    sim.Genas_expt.Simulate.per_event sim.Genas_expt.Simulate.ci_halfwidth
    sim.Genas_expt.Simulate.match_rate

let run_dists name =
  match name with
  | None ->
    List.iter print_endline Catalog.names;
    Printf.printf "(plus peak specs of the form NN%%high / NN%%low)\n"
  | Some name ->
    let gen = Catalog.find_exn name in
    let axis = Axis.make ~discrete:false ~lo:0.0 ~hi:100.0 in
    let dist = gen axis in
    let bins = 50 in
    let probs =
      List.init bins (fun i ->
          let a = 100.0 *. float_of_int i /. float_of_int bins in
          let b = 100.0 *. float_of_int (i + 1) /. float_of_int bins in
          Dist.prob_interval dist
            (Interval.make_exn ~hi_closed:(i = bins - 1) ~lo:a ~hi:b ()))
    in
    Printf.printf "%s on the normalized domain [0,100]:\n  %s\n" name
      (Report.sparkline probs);
    List.iteri
      (fun i p -> if p > 0.02 then Printf.printf "  bin %2d: %.3f\n" i p)
      probs

let run_figures targets =
  let targets = if targets = [] then [ "all" ] else targets in
  let all =
    [ "fig3"; "fig4a"; "fig4b"; "fig5"; "fig6a"; "fig6b"; "tv"; "ablation";
      "baselines"; "outlook"; "quench"; "routing"; "adaptive"; "correlated"; "dontcare"; "queueing"; "orderings8"; "fragility" ]
  in
  let targets = if targets = [ "all" ] then all else targets in
  List.iter
    (function
      | "fig3" -> Report.print (Figures.fig3 ())
      | "fig4a" -> Report.print (Figures.fig4a ())
      | "fig4b" -> Report.print (Figures.fig4b ())
      | "fig5" -> List.iter Report.print (Figures.fig5 ())
      | "fig6a" -> Report.print (Figures.fig6a ())
      | "fig6b" -> Report.print (Figures.fig6b ())
      | "tv" -> Report.print (Figures.tv_scenarios ())
      | "ablation" -> Report.print (Figures.ablation_sharing ())
      | "baselines" -> Report.print (Figures.baseline_comparison ())
      | "outlook" -> Report.print (Figures.outlook_strategies ())
      | "quench" -> Report.print (Figures.ablation_quench ())
      | "routing" -> Report.print (Figures.ablation_routing ())
      | "adaptive" -> Report.print (Figures.ablation_adaptive ())
      | "correlated" -> Report.print (Figures.correlated ())
      | "dontcare" -> Report.print (Figures.dontcare_influence ())
      | "queueing" -> Report.print (Figures.queueing ())
      | "orderings8" -> Report.print (Figures.orderings8 ())
      | "fragility" -> Report.print (Figures.fragility ())
      | other -> or_die (Error (Printf.sprintf "unknown figure %S" other)))
    targets

(* ------------------------------------------------------------------ *)
(* Metrics: a deterministic simulated run through an instrumented
   broker (engine + adaptive component + quench), then one snapshot in
   the requested exporter format.                                      *)

let run_metrics format events seed =
  if events <= 0 then or_die (Error "need a positive --events count");
  let registry = Obs.Metrics.create () in
  let schema = Workload.normalized_schema ~attrs:3 ~points:100 () in
  let axes =
    Array.init 3 (fun i ->
        Axis.of_domain (Schema.attribute schema i).Schema.domain)
  in
  let rng = Genas_prng.Prng.create ~seed in
  let broker =
    Broker.create ~metrics:registry
      ~adaptive:
        { Genas_core.Adaptive.warmup = 100; check_every = 50;
          drift_threshold = 0.2 }
      schema
  in
  let profiles =
    Workload.gen_profiles rng schema
      {
        Workload.p = 100;
        dontcare = [| 0.3; 0.3; 0.3 |];
        value_dists = Array.map (fun ax -> Shape.gauss () ax) axes;
        range_width = None;
      }
  in
  Profile_set.iter profiles (fun id p ->
      ignore
        (Broker.subscribe broker
           ~subscriber:(Printf.sprintf "group-%d" (id mod 4))
           ~profile:p
           (fun _ -> ())));
  let publish_phase dists n =
    for _ = 1 to n do
      let coords = Workload.event_coords rng dists in
      let values =
        Array.mapi
          (fun i c -> Axis.value (Schema.attribute schema i).Schema.domain c)
          coords
      in
      ignore (Broker.publish_quenched broker (Event.of_values_exn schema values))
    done
  in
  (* Phase 1: uniform events. Phase 2: a hot-spot — the histogram
     drifts, so the adaptive component re-optimizes at least once. *)
  publish_phase (Array.map Dist.uniform axes) (events / 2);
  publish_phase
    (Array.map (fun ax -> Shape.peak ~at:0.85 ~mass:0.9 ~width:0.05 ax) axes)
    (events - (events / 2));
  match format with
  | "json" -> print_string (Obs.Metrics.to_json registry)
  | "prom" | "prometheus" -> print_string (Obs.Metrics.to_prometheus registry)
  | other ->
    or_die (Error (Printf.sprintf "unknown metrics format %S (json|prom)" other))

(* ------------------------------------------------------------------ *)
(* Perf bench: the flat-vs-pointer / 1-vs-N-domain throughput suite of
   Genas_expt.Perfbench, as a table or as the BENCH_*.json document.   *)

let parse_scaling spec =
  match
    String.split_on_char ',' spec
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun s -> int_of_string_opt (String.trim s))
  with
  | [] -> Error "empty --scaling list"
  | l when List.exists Option.is_none l ->
    Error ("bad --scaling list: " ^ spec)
  | l ->
    let points = List.filter_map Fun.id l in
    if List.exists (fun p -> p <= 0) points then
      Error "scaling populations must be positive"
    else Ok points

let parse_domains spec =
  match
    String.split_on_char ',' spec
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun s -> int_of_string_opt (String.trim s))
  with
  | [] -> Error "empty --domains list"
  | l when List.exists Option.is_none l -> Error ("bad --domains list: " ^ spec)
  | l ->
    let ds = List.filter_map Fun.id l in
    if List.exists (fun d -> d <= 0) ds then
      Error "domain counts must be positive"
    else Ok ds

let run_bench json events out profiles scaling baseline_max domains =
  if events <= 0 then or_die (Error "need a positive --events count");
  if profiles <= 0 then or_die (Error "need a positive --profiles count");
  if baseline_max < 0 then
    or_die (Error "need a non-negative --baseline-max population");
  let domains = Option.map (fun spec -> or_die (parse_domains spec)) domains in
  let t = Genas_expt.Perfbench.run ~profiles ~events ?domains () in
  let scale =
    Option.map
      (fun spec ->
        let points = or_die (parse_scaling spec) in
        Genas_expt.Perfbench.scale ~points ~baseline_max ())
      scaling
  in
  let output =
    if json then begin
      let doc =
        Obs.Json.to_string (Genas_expt.Perfbench.to_json ?scale t) ^ "\n"
      in
      (* The strict validator gates every machine-readable emission, so
         a malformed BENCH_*.json can never be written. *)
      (match Obs.Json.validate doc with
      | Ok () -> ()
      | Error e -> or_die (Error ("bench --json produced invalid JSON: " ^ e)));
      doc
    end
    else Format.asprintf "%a" Report.render (Genas_expt.Perfbench.table t)
  in
  match out with
  | None -> print_string output
  | Some path ->
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc output)

(* ------------------------------------------------------------------ *)
(* Fault-injection demo: a routed network driven through a seeded
   fault plan. Identical seeds replay identical traces, which the cram
   suite pins byte-for-byte.                                           *)

let run_faults seed events handler_fail drop dup delay pause retries =
  if events <= 0 then or_die (Error "need a positive --events count");
  let module Router = Genas_ens.Router in
  let module Fault = Genas_ens.Fault in
  let module Supervise = Genas_ens.Supervise in
  let module Deadletter = Genas_ens.Deadletter in
  let module Profile = Genas_profile.Profile in
  let module Predicate = Genas_profile.Predicate in
  let module Value = Genas_model.Value in
  let schema =
    Schema.create_exn
      [
        ("topic", Domain.enum [ "weather"; "traffic"; "energy" ]);
        ("severity", Domain.int_range ~lo:0 ~hi:9);
      ]
  in
  let faults, retry =
    try
      ( Fault.plan ~seed
          {
            Fault.none with
            Fault.handler_failure = [ ("flaky", handler_fail) ];
            link_drop = drop;
            link_duplicate = dup;
            link_delay = delay;
            broker_pause = pause;
          },
        Supervise.retry_policy ~max_attempts:retries ~jitter_seed:seed
          ~trip_after:4 ~cooldown:8 () )
    with Invalid_argument msg -> or_die (Error msg)
  in
  let net =
    try Router.line schema ~nodes:4 ~retry ~faults
    with Invalid_argument msg -> or_die (Error msg)
  in
  let sub at who preds =
    ignore
      (Router.subscribe net ~at ~subscriber:who
         ~profile:(Profile.create_exn schema preds)
         (fun _ -> ()))
  in
  sub 3 "ops" [ ("topic", Predicate.Eq (Value.Str "weather")) ];
  sub 2 "flaky" [ ("severity", Predicate.Ge (Value.Int 5)) ];
  sub 0 "audit" [ ("severity", Predicate.Ge (Value.Int 8)) ];
  let rng = Genas_prng.Prng.create ~seed in
  let topics = [| "weather"; "traffic"; "energy" |] in
  for i = 0 to events - 1 do
    let ev =
      Event.create_exn ~time:(float_of_int i) schema
        [
          ("topic", Value.Str (Genas_prng.Prng.choice rng topics));
          ("severity", Value.Int (Genas_prng.Prng.int rng ~bound:10));
        ]
    in
    ignore (Router.publish net ~at:(Genas_prng.Prng.int rng ~bound:4) ev)
  done;
  let s = Router.supervisor net in
  let dlq = Router.deadletter net in
  Printf.printf "topology 0-1-2-3, %d events, seed %d\n" events seed;
  Printf.printf "delivered %d  event-messages %d\n"
    (Router.notifications net) (Router.event_messages net);
  Printf.printf "link faults: %d dropped, %d duplicated, %d delayed; %d broker pauses\n"
    (Router.link_drops net) (Router.link_duplicates net)
    (Router.link_delays net) (Router.broker_pauses net);
  Printf.printf
    "supervision: %d failed attempts, %d retries, %d dead-lettered, %d \
     short-circuited, %d circuit trips\n"
    (Supervise.failures s) (Supervise.retries s) (Supervise.deadlettered s)
    (Supervise.short_circuited s) (Supervise.trips s);
  Printf.printf "dead-letter queue: %d held (capacity %d, %d dropped)\n"
    (Deadletter.length dlq) (Deadletter.capacity dlq) (Deadletter.dropped dlq);
  (match Deadletter.entries dlq with
  | [] -> ()
  | e :: _ ->
    Printf.printf "  oldest: #%d %s after %d attempt(s): %s\n"
      e.Deadletter.seq e.Deadletter.notification.Genas_ens.Notification.subscriber
      e.Deadletter.attempts e.Deadletter.error);
  let trace = Fault.trace faults in
  Printf.printf "fault trace: %d injected\n" (Fault.injected faults);
  List.iteri
    (fun i f ->
      if i < 5 then Format.printf "  %a@." Fault.pp_fault f)
    trace;
  Printf.printf "circuit(flaky) = %s\n"
    (match Supervise.circuit s "flaky" with
    | Supervise.Closed -> "closed"
    | Supervise.Open -> "open"
    | Supervise.Half_open -> "half-open")

(* ------------------------------------------------------------------ *)
(* Durability demo: a journaled broker driven through a seeded
   workload (optionally dying at an injected crash point), and the
   recovery that rebuilds it from the journal directory.              *)

let journal_schema () =
  Schema.create_exn
    [
      ("topic", Domain.enum [ "weather"; "traffic"; "energy" ]);
      ("severity", Domain.int_range ~lo:0 ~hi:9);
    ]

(* The flaky subscriber fails deterministically (severity 9), not
   probabilistically: the recovered broker re-binds the same handler
   and reproduces the same outcomes without sharing a fault stream. *)
let journal_handlers ~subscriber =
  if String.equal subscriber "flaky" then fun n ->
    match n.Genas_ens.Notification.event.Event.values.(1) with
    | Genas_model.Value.Int 9 -> failwith "refusing severity 9"
    | _ -> ()
  else fun (_ : Genas_ens.Notification.t) -> ()

let journal_subscribe b =
  let module Broker = Genas_ens.Broker in
  let module Profile = Genas_profile.Profile in
  let module Predicate = Genas_profile.Predicate in
  let module Value = Genas_model.Value in
  let schema = Broker.schema b in
  let sub who preds =
    ignore
      (Broker.subscribe b ~subscriber:who
         ~profile:(Profile.create_exn schema preds)
         (journal_handlers ~subscriber:who))
  in
  sub "ops" [ ("topic", Predicate.Eq (Value.Str "weather")) ];
  sub "flaky" [ ("severity", Predicate.Ge (Value.Int 5)) ]

let journal_summary b =
  let module Broker = Genas_ens.Broker in
  let module Journal = Genas_ens.Journal in
  let module Deadletter = Genas_ens.Deadletter in
  Printf.printf "published %d  notifications %d  dead-letters %d\n"
    (Broker.published b) (Broker.notifications b)
    (Deadletter.length (Broker.deadletter b));
  match Broker.wal b with
  | None -> ()
  | Some j ->
    Printf.printf "journal: %d ops logged, %d snapshots\n"
      (Journal.ops_logged j)
      (Journal.snapshots_written j)

let crash_plan ~seed crash crash_prob =
  let module Fault = Genas_ens.Fault in
  match crash with
  | None -> None
  | Some kind ->
    let spec =
      match kind with
      | "before-fsync" ->
        { Fault.none with Fault.crash_before_fsync = crash_prob }
      | "after-journal" ->
        { Fault.none with Fault.crash_after_journal = crash_prob }
      | "mid-snapshot" ->
        { Fault.none with Fault.crash_mid_snapshot = crash_prob }
      | other ->
        or_die
          (Error
             (Printf.sprintf
                "unknown --crash %S (before-fsync|after-journal|mid-snapshot)"
                other))
    in
    (try Some (Fault.plan ~seed spec)
     with Invalid_argument msg -> or_die (Error msg))

let run_journal dir seed events snapshot_every crash crash_prob =
  let module Broker = Genas_ens.Broker in
  let module Journal = Genas_ens.Journal in
  let module Fault = Genas_ens.Fault in
  let module Value = Genas_model.Value in
  if events <= 0 then or_die (Error "need a positive --events count");
  let faults = crash_plan ~seed crash crash_prob in
  let journal =
    try Journal.config ~snapshot_every dir
    with Invalid_argument msg -> or_die (Error msg)
  in
  let schema = journal_schema () in
  let b = Broker.create ?faults ~journal schema in
  journal_subscribe b;
  let rng = Genas_prng.Prng.create ~seed in
  let topics = [| "weather"; "traffic"; "energy" |] in
  let crashed = ref None in
  (try
     for i = 0 to events - 1 do
       let ev =
         Event.create_exn ~time:(float_of_int i) schema
           [
             ("topic", Value.Str (Genas_prng.Prng.choice rng topics));
             ("severity", Value.Int (Genas_prng.Prng.int rng ~bound:10));
           ]
       in
       ignore (Broker.publish b ev)
     done;
     Broker.close b
   with Fault.Crashed point -> crashed := Some point);
  Printf.printf "journaled workload: %d events, seed %d, snapshot every %d\n"
    events seed snapshot_every;
  (match !crashed with
  | None -> ()
  | Some p -> Printf.printf "crashed: %s\n" (Fault.crash_point_name p));
  journal_summary b

let run_recover dir =
  let module Broker = Genas_ens.Broker in
  let module Journal = Genas_ens.Journal in
  let journal = Journal.config dir in
  let schema = journal_schema () in
  match Broker.recover ~handlers:journal_handlers ~journal schema with
  | Error e -> or_die (Error ("recover: " ^ e))
  | Ok b ->
    let j = Option.get (Broker.wal b) in
    Printf.printf "recovered: %d ops replayed, %d corrupt tail(s) truncated\n"
      (Journal.replayed_ops j) (Journal.truncations j);
    Printf.printf "subscriptions %d\n" (Broker.subscription_count b);
    journal_summary b;
    Broker.close b

(* ------------------------------------------------------------------ *)
(* Tracing demo: the journal workload through a traced broker, under a
   deterministic counter clock — identical seeds produce byte-identical
   Chrome trace JSON, which the cram suite pins with cmp.             *)

let run_trace chrome events seed sample dir crash crash_prob =
  let module Broker = Genas_ens.Broker in
  let module Journal = Genas_ens.Journal in
  let module Fault = Genas_ens.Fault in
  let module Value = Genas_model.Value in
  if events <= 0 then or_die (Error "need a positive --events count");
  if crash <> None && dir = None then
    or_die (Error "--crash needs a journal directory (--dir)");
  (* Every Clock.now_ns call advances a fake clock by 1µs: span
     timestamps depend only on the call sequence, never the host. *)
  let counter = ref 0L in
  Obs.Clock.set_source (fun () ->
      counter := Int64.add !counter 1_000L;
      !counter);
  Fun.protect ~finally:Obs.Clock.reset_source @@ fun () ->
  let tracer =
    try Obs.Trace.create ~sample ~capacity:8 ~seed ()
    with Invalid_argument msg -> or_die (Error msg)
  in
  let faults = crash_plan ~seed crash crash_prob in
  let journal =
    match dir with
    | None -> None
    | Some d -> (
      try Some (Journal.config ~snapshot_every:16 d)
      with Invalid_argument msg -> or_die (Error msg))
  in
  let schema = journal_schema () in
  let b = Broker.create ?faults ?journal ~tracer schema in
  journal_subscribe b;
  let rng = Genas_prng.Prng.create ~seed in
  let topics = [| "weather"; "traffic"; "energy" |] in
  let crashed = ref None in
  (try
     for i = 0 to events - 1 do
       let ev =
         Event.create_exn ~time:(float_of_int i) schema
           [
             ("topic", Value.Str (Genas_prng.Prng.choice rng topics));
             ("severity", Value.Int (Genas_prng.Prng.int rng ~bound:10));
           ]
       in
       ignore (Broker.publish b ev)
     done;
     if journal <> None then Broker.close b
   with Fault.Crashed point -> crashed := Some point);
  if chrome then print_string (Obs.Trace.to_chrome tracer)
  else begin
    Printf.printf
      "traced workload: %d events, seed %d, sample %g: %d traces started, %d \
       sampled, %d completed, %d evicted\n"
      events seed sample (Obs.Trace.started tracer) (Obs.Trace.sampled tracer)
      (Obs.Trace.completed tracer) (Obs.Trace.evicted tracer);
    match !crashed with
    | Some p ->
      Printf.printf "crashed: %s\n" (Fault.crash_point_name p);
      print_string
        (Option.value ~default:"" (Obs.Trace.last_dump tracer))
    | None ->
      print_string (Option.value ~default:"" (Broker.dump_flight_recorder b))
  end

let run_jsoncheck () =
  let input = In_channel.input_all stdin in
  match Obs.Json.validate input with
  | Ok () -> print_endline "ok"
  | Error e ->
    prerr_endline ("jsoncheck: " ^ e);
    exit 1

(* ------------------------------------------------------------------ *)
(* Interactive service REPL.                                           *)

let repl_help =
  {|commands:
  schema NAME            begin a schema definition; attribute lines
                         ("attr : DOMAIN") follow, terminated by "end"
  broker NAME SCHEMA     create a broker (append "adaptive" to enable
                         distribution-driven re-optimization)
  sub BROKER WHO : BODY  subscribe WHO with a profile-language body
  pub BROKER EVENT       publish ("attr = v, ...")
  tree BROKER            print the broker's current profile tree
  report BROKER          one-line broker status
  help                   this text
  quit                   leave|}

let run_repl () =
  let svc = Genas_ens.Service.create () in
  let out fmt = Format.printf fmt in
  out "GENAS interactive service. 'help' lists commands.@.";
  let on_error = function
    | Ok () -> ()
    | Error e -> out "error: %s@." e
  in
  let rec read_schema name acc =
    match In_channel.input_line stdin with
    | None -> out "error: unterminated schema definition@."
    | Some line when String.trim line = "end" ->
      on_error
        (Genas_ens.Service.define_schema_text svc ~name (List.rev acc));
      if Genas_ens.Service.find_schema svc name <> None then
        out "schema %s defined@." name
    | Some line ->
      let line = String.trim line in
      if line = "" then read_schema name acc else read_schema name (line :: acc)
  in
  let split2 s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let rec loop () =
    out "> @?";
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      let line = String.trim line in
      let cmd, rest = split2 line in
      (match cmd with
      | "" -> ()
      | "help" -> out "%s@." repl_help
      | "quit" | "exit" -> raise Exit
      | "schema" ->
        if rest = "" then out "usage: schema NAME@."
        else read_schema rest []
      | "broker" -> (
        match String.split_on_char ' ' rest with
        | [ name; schema ] ->
          on_error (Genas_ens.Service.create_broker svc ~name ~schema ());
          if Genas_ens.Service.find_broker svc name <> None then
            out "broker %s on schema %s@." name schema
        | [ name; schema; "adaptive" ] ->
          on_error
            (Genas_ens.Service.create_broker svc ~name ~schema
               ~adaptive:Genas_core.Adaptive.default_policy ());
          if Genas_ens.Service.find_broker svc name <> None then
            out "adaptive broker %s on schema %s@." name schema
        | _ -> out "usage: broker NAME SCHEMA [adaptive]@.")
      | "sub" -> (
        let broker, rest = split2 rest in
        match String.index_opt rest ':' with
        | None -> out "usage: sub BROKER WHO : BODY@."
        | Some i ->
          let who = String.trim (String.sub rest 0 i) in
          let body =
            String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
          in
          (match
             Genas_ens.Service.subscribe svc ~broker ~subscriber:who body
               (fun n ->
                 match Genas_ens.Service.find_broker svc broker with
                 | Some b ->
                   out "  [%s] %s@." n.Genas_ens.Notification.subscriber
                     (Lang.event_to_string (Genas_ens.Broker.schema b)
                        n.Genas_ens.Notification.event)
                 | None -> ())
           with
          | Ok _ -> out "subscribed %s@." who
          | Error e -> out "error: %s@." e))
      | "pub" -> (
        let broker, body = split2 rest in
        match Genas_ens.Service.publish svc ~broker body with
        | Ok n -> out "%d notification(s)@." n
        | Error e -> out "error: %s@." e)
      | "tree" -> (
        match Genas_ens.Service.find_broker svc rest with
        | None -> out "error: unknown broker %S@." rest
        | Some b ->
          out "%a@." Tree.pp
            (Genas_core.Engine.tree (Genas_ens.Broker.engine b)))
      | "report" -> (
        match Genas_ens.Service.report svc ~broker:rest with
        | Ok s -> out "%s@." s
        | Error e -> out "error: %s@." e)
      | other -> out "unknown command %S ('help' lists commands)@." other);
      loop ()
  in
  (try loop () with Exit -> ());
  out "bye@."

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring.                                                    *)

open Cmdliner

let schema_arg =
  Arg.(required & opt (some file) None & info [ "schema" ] ~doc:"Schema file.")

let profiles_arg =
  Arg.(required & opt (some file) None & info [ "profiles" ] ~doc:"Profile file.")

let match_cmd =
  let events_arg =
    Arg.(required & opt (some file) None & info [ "events" ] ~doc:"Event file.")
  in
  let strategy_arg =
    Arg.(value & opt string "natural"
         & info [ "strategy" ] ~doc:"Value order: natural|v1|v2|v3|binary|hashed|auto.")
  in
  let attr_arg =
    Arg.(value & opt string "natural"
         & info [ "attr-measure" ] ~doc:"Attribute order: natural|a1|a2|a3.")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ] ~doc:"Trace each event's path through the tree.")
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Filter events from a file against profiles")
    Term.(const run_match $ schema_arg $ profiles_arg $ events_arg
          $ strategy_arg $ attr_arg $ explain_arg)

let plan_cmd =
  let dists_arg =
    Arg.(value & opt_all string []
         & info [ "event-dist" ]
             ~doc:"Assumed event distribution per attribute (catalog name, \
                   repeatable).")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show selectivities and candidate tree plans")
    Term.(const run_plan $ schema_arg $ profiles_arg $ dists_arg)

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive GENAS service (schemas, brokers, \
                           subscriptions and events from stdin)")
    Term.(const run_repl $ const ())

let dists_cmd =
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "dists" ~doc:"List or display catalog distributions")
    Term.(const run_dists $ name_arg)

let figures_cmd =
  let targets_arg = Arg.(value & pos_all string [] & info [] ~docv:"TARGET") in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run_figures $ targets_arg)

let simulate_cmd =
  let dists_arg =
    Arg.(value & opt_all string []
         & info [ "event-dist" ]
             ~doc:"Event distribution per attribute (catalog name, \
                   repeatable; default uniform).")
  in
  let strategy_arg =
    Arg.(value & opt string "v1"
         & info [ "strategy" ] ~doc:"Value order: natural|v1|v2|v3|binary|hashed|auto.")
  in
  let attr_arg =
    Arg.(value & opt string "a2"
         & info [ "attr-measure" ] ~doc:"Attribute order: natural|a1|a2|a3.")
  in
  let events_arg =
    Arg.(value & opt (some int) None
         & info [ "events" ]
             ~doc:"Fixed event count (default: run to 95% precision).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Analytic vs simulated filter cost for a profile file (the \
             paper's TV protocol)")
    Term.(const run_simulate $ schema_arg $ profiles_arg $ dists_arg
          $ strategy_arg $ attr_arg $ events_arg)

let metrics_cmd =
  let format_arg =
    Arg.(value & opt string "json"
         & info [ "format" ] ~doc:"Snapshot format: json|prom.")
  in
  let events_arg =
    Arg.(value & opt int 2000
         & info [ "events" ] ~doc:"Events to publish before the snapshot.")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload PRNG seed.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a simulated workload through an instrumented broker and \
             dump a metrics snapshot (match-latency percentiles, adaptive \
             rebuilds, tree gauges, delivery counters)")
    Term.(const run_metrics $ format_arg $ events_arg $ seed_arg)

let bench_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the machine-readable BENCH_*.json document (strictly \
                   validated) instead of a table.")
  in
  let events_arg =
    Arg.(value & opt int 50_000
         & info [ "events" ] ~doc:"Per-entry timing budget, in events.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let profiles_arg =
    Arg.(value & opt int 500
         & info [ "profiles" ]
             ~doc:"Profile population for the classic timing workload.")
  in
  let scaling_arg =
    Arg.(value & opt (some string) None
         & info [ "scaling" ] ~docv:"N,N,..."
             ~doc:"Also run the profile-count scaling curve at the given \
                   comma-separated populations (subscribe/unsubscribe \
                   latency and publish throughput, aggregation on vs the \
                   rebuild-per-churn baseline; see docs/SCALING.md) and \
                   attach it to the JSON document as a \"scaling\" block.")
  in
  let baseline_max_arg =
    Arg.(value & opt int 2_000
         & info [ "baseline-max" ] ~docv:"N"
             ~doc:"Largest --scaling population the plain rebuild-per-churn \
                   baseline is measured at; beyond it only the aggregated \
                   point is recorded (each sampled baseline op pays a full \
                   replan, seconds each on the covering workload, and the \
                   replanned tree grows combinatorially with population).")
  in
  let domains_arg =
    Arg.(value & opt (some string) None
         & info [ "domains" ] ~docv:"D,D,..."
             ~doc:"Domain counts for the persistent-pool rows \
                   (comma-separated; default 1,2 and the host \
                   recommendation capped at 4). Forcing a fixed list \
                   keeps BENCH_*.json shape identical across hosts.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Benchmark every matcher (naive, counting, pointer tree, compiled \
             flat form, batch/packed paths, hotness relayout, persistent \
             domain pool, profile shards) on the paper's timing workload; \
             events/sec and comparisons/event per matcher and strategy")
    Term.(const run_bench $ json_arg $ events_arg $ out_arg $ profiles_arg
          $ scaling_arg $ baseline_max_arg $ domains_arg)

let faults_cmd =
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Fault-plan and workload seed.")
  in
  let events_arg =
    Arg.(value & opt int 200 & info [ "events" ] ~doc:"Events to publish.")
  in
  let handler_arg =
    Arg.(value & opt float 0.5
         & info [ "handler-fail" ]
             ~doc:"Probability one delivery attempt to the flaky subscriber \
                   raises.")
  in
  let drop_arg =
    Arg.(value & opt float 0.1 & info [ "drop" ] ~doc:"Link drop probability.")
  in
  let dup_arg =
    Arg.(value & opt float 0.05
         & info [ "dup" ] ~doc:"Link duplication probability.")
  in
  let delay_arg =
    Arg.(value & opt float 0.05
         & info [ "delay" ] ~doc:"Link delay probability.")
  in
  let pause_arg =
    Arg.(value & opt float 0.05
         & info [ "pause" ] ~doc:"Broker pause probability.")
  in
  let retries_arg =
    Arg.(value & opt int 3
         & info [ "retries" ] ~doc:"Delivery attempts per notification.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Drive a routed broker network through a seeded fault-injection \
             plan (flaky handler, lossy links, pausing brokers) and report \
             the delivery, retry, dead-letter, and circuit-breaker outcome; \
             identical seeds replay identical traces")
    Term.(const run_faults $ seed_arg $ events_arg $ handler_arg $ drop_arg
          $ dup_arg $ delay_arg $ pause_arg $ retries_arg)

let journal_dir_arg =
  Arg.(required & opt (some string) None
       & info [ "dir" ] ~docv:"DIR" ~doc:"Journal directory.")

let journal_cmd =
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload (and crash-plan) seed.")
  in
  let events_arg =
    Arg.(value & opt int 60 & info [ "events" ] ~doc:"Events to publish.")
  in
  let snapshot_arg =
    Arg.(value & opt int 16
         & info [ "snapshot-every" ] ~doc:"Journaled ops between snapshots.")
  in
  let crash_arg =
    Arg.(value & opt (some string) None
         & info [ "crash" ]
             ~doc:"Inject a seeded crash: before-fsync|after-journal|\
                   mid-snapshot.")
  in
  let crash_prob_arg =
    Arg.(value & opt float 0.02
         & info [ "crash-prob" ] ~doc:"Per-operation crash probability.")
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:"Run a seeded workload through a journaled broker (write-ahead \
             log + periodic snapshots in --dir), optionally dying at an \
             injected crash point; 'recover' rebuilds the broker from the \
             same directory")
    Term.(const run_journal $ journal_dir_arg $ seed_arg $ events_arg
          $ snapshot_arg $ crash_arg $ crash_prob_arg)

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a journaled broker from --dir (snapshot + journal tail, \
             truncating a torn tail) and report the rebuilt state")
    Term.(const run_recover $ journal_dir_arg)

let trace_cmd =
  let chrome_arg =
    Arg.(value & flag
         & info [ "chrome" ]
             ~doc:"Emit the flight recorder as Chrome trace-event JSON \
                   (load in chrome://tracing or ui.perfetto.dev) instead \
                   of the text dump.")
  in
  let events_arg =
    Arg.(value & opt int 12 & info [ "events" ] ~doc:"Events to publish.")
  in
  let seed_arg =
    Arg.(value & opt int 7
         & info [ "seed" ] ~doc:"Workload, sampler, and crash-plan seed.")
  in
  let sample_arg =
    Arg.(value & opt float 1.0
         & info [ "sample" ] ~doc:"Trace sampling probability in [0,1].")
  in
  let dir_arg =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Journal directory (enables journal/snapshot spans and \
                   crash injection).")
  in
  let crash_arg =
    Arg.(value & opt (some string) None
         & info [ "crash" ]
             ~doc:"Inject a seeded crash (needs --dir): before-fsync|\
                   after-journal|mid-snapshot; the flight recorder is \
                   dumped at the crash.")
  in
  let crash_prob_arg =
    Arg.(value & opt float 0.02
         & info [ "crash-prob" ] ~doc:"Per-operation crash probability.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a seeded workload through a traced broker under a \
             deterministic clock and print the causal span trees (one per \
             publish: matching, deliveries, retries, journal appends, \
             snapshot installs) — as a flight-recorder dump or as Chrome \
             trace JSON; identical seeds produce byte-identical output")
    Term.(const run_trace $ chrome_arg $ events_arg $ seed_arg $ sample_arg
          $ dir_arg $ crash_arg $ crash_prob_arg)

let jsoncheck_cmd =
  Cmd.v
    (Cmd.info "jsoncheck"
       ~doc:"Validate that stdin is a single well-formed JSON document \
             (used by the cram tests against the metrics exporter)")
    Term.(const run_jsoncheck $ const ())

(* ------------------------------------------------------------------ *)
(* Networked brokers: serve a broker over a socket / drive one from a
   scripted client (see docs/NETWORKING.md).                           *)

let net_schema = function
  | Some path -> or_die (load_schema path)
  | None -> journal_schema ()

(* Shared observability plumbing for serve/relay/connect: one metrics
   registry per process (scraped over --metrics-addr), and one tracer
   whose flight recorder is dumped to --trace-out at exit for
   [genas trace-merge] to stitch. *)

(* A per-tracer logical clock: every read advances 1µs, so span times
   depend only on the operation sequence, never the host — two
   identical runs dump byte-identical traces. Private per tracer:
   background ticker/monitor threads of *other* components never
   perturb it the way a process-wide fake [Clock.set_source] would. *)
let logical_clock () =
  let mu = Mutex.create () in
  let counter = ref 0L in
  fun () ->
    Mutex.lock mu;
    counter := Int64.add !counter 1_000L;
    let v = !counter in
    Mutex.unlock mu;
    v

type obs = {
  obs_metrics : Obs.Metrics.t;
  obs_tracer : Obs.Trace.t option;
  obs_finish : unit -> unit;
      (* write the trace dump, stop the scrape endpoint *)
}

let obs_setup ~node ~metrics_addr ~trace_out ~trace_logical ~sample =
  let module Transport = Genas_ens.Transport in
  let metrics = Obs.Metrics.create () in
  let tracer =
    match trace_out with
    | None -> None
    | Some _ ->
      let clock = if trace_logical then Some (logical_clock ()) else None in
      (* The sampler seed is the node name's hash: deterministic per
         run, and distinct nodes draw distinct trace-id streams, so a
         merged mesh dump never collides ids across nodes. *)
      let seed = Hashtbl.hash node land 0x3FFFFFFF in
      Some
        (try Obs.Trace.create ~sample ~capacity:64 ~metrics ?clock ~seed ()
         with Invalid_argument msg -> or_die (Error msg))
  in
  let scrape =
    Option.map
      (fun s ->
        let addr = or_die (Transport.addr_of_string s) in
        Obs.Scrape.start ~node ~metrics (Transport.sockaddr_of addr))
      metrics_addr
  in
  let finish () =
    (match (trace_out, tracer) with
    | Some path, Some tr ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Obs.Trace.export tr ~node))
    | _ -> ());
    Option.iter Obs.Scrape.stop scrape
  in
  { obs_metrics = metrics; obs_tracer = tracer; obs_finish = finish }

let run_trace_merge files out =
  if files = [] then or_die (Error "trace-merge: need at least one dump file");
  let dumps =
    List.map
      (fun p ->
        try In_channel.with_open_text p In_channel.input_all
        with Sys_error e -> or_die (Error ("trace-merge: " ^ e)))
      files
  in
  let merged =
    try Obs.Trace.merge_dumps dumps
    with Invalid_argument msg -> or_die (Error ("trace-merge: " ^ msg))
  in
  (match Obs.Json.validate merged with
  | Ok () -> ()
  | Error e -> or_die (Error ("trace-merge produced invalid JSON: " ^ e)));
  match out with
  | None -> print_string merged
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc merged)

let run_http_get addr_s path =
  let module Transport = Genas_ens.Transport in
  let addr = or_die (Transport.addr_of_string addr_s) in
  match Obs.Scrape.get (Transport.sockaddr_of addr) ~path with
  | Error e -> or_die (Error ("http-get: " ^ e))
  | Ok (code, body) ->
    Printf.printf "%d\n" code;
    print_string body

let run_status addr_s schema_path deadline =
  let module Client = Genas_ens.Broker_client in
  let module Transport = Genas_ens.Transport in
  let addr = or_die (Transport.addr_of_string addr_s) in
  let schema = net_schema schema_path in
  let c =
    or_die
      (Client.connect ~name:"status-probe" ~deadline_s:deadline ~heartbeat:None
         schema addr)
  in
  let nodes = or_die (Client.status_request c) in
  Client.close c;
  Printf.printf "%-12s %-8s %8s %6s %9s  %s\n" "NODE" "ROLE" "CURSOR" "CONNS"
    "UPTIME" "PEERS";
  List.iter
    (fun (n : Transport.node_status) ->
      Printf.printf "%-12s %-8s %8d %6d %8.1fs  %s\n" n.Transport.ns_node
        n.Transport.ns_role n.Transport.ns_cursor n.Transport.ns_connections
        n.Transport.ns_uptime_s
        (String.concat ", "
           (List.map
              (fun (p : Transport.peer_status) ->
                Printf.sprintf "%s(%s,q=%d)" p.Transport.ps_name
                  p.Transport.ps_state p.Transport.ps_queue)
              n.Transport.ns_peers)))
    nodes

(* [--heartbeat 0] disables liveness; anything positive is the ping
   period in seconds, with [--misses] silent periods declaring a peer
   dead. *)
let net_heartbeat period misses =
  let module Transport = Genas_ens.Transport in
  if period <= 0.0 then None
  else
    match Transport.heartbeat ~period_s:period ~misses () with
    | hb -> Some hb
    | exception Invalid_argument msg -> or_die (Error msg)

let run_serve addr_s schema_path dir snapshot_every aggregate connections name
    hb_period hb_misses max_queue metrics_addr trace_out trace_logical sample =
  let module Server = Genas_ens.Broker_server in
  let module Journal = Genas_ens.Journal in
  let module Transport = Genas_ens.Transport in
  let addr = or_die (Transport.addr_of_string addr_s) in
  let schema = net_schema schema_path in
  let obs = obs_setup ~node:name ~metrics_addr ~trace_out ~trace_logical ~sample in
  let b =
    match dir with
    | Some dir ->
      let journal =
        try Journal.config ~snapshot_every dir
        with Invalid_argument msg -> or_die (Error msg)
      in
      Broker.create ~journal ~aggregate ~metrics:obs.obs_metrics
        ?tracer:obs.obs_tracer schema
    | None ->
      Broker.create ~aggregate ~metrics:obs.obs_metrics ?tracer:obs.obs_tracer
        schema
  in
  let srv =
    Server.create ~name ~heartbeat:(net_heartbeat hb_period hb_misses)
      ~max_queue ~metrics:obs.obs_metrics ?tracer:obs.obs_tracer ~broker:b addr
  in
  Printf.printf "serving %s\n%!" (Transport.addr_to_string addr);
  Server.serve ~connections srv;
  Printf.printf "served %d connection(s), cursor %d\n" connections
    (Server.cursor srv);
  Broker.close b;
  obs.obs_finish ()

let run_relay addr_s up_s schema_path dir snapshot_every connections name
    hb_period hb_misses max_queue metrics_addr trace_out trace_logical sample =
  let module Server = Genas_ens.Broker_server in
  let module Relay = Genas_ens.Relay in
  let module Journal = Genas_ens.Journal in
  let module Transport = Genas_ens.Transport in
  let listen = or_die (Transport.addr_of_string addr_s) in
  let up = or_die (Transport.addr_of_string up_s) in
  let schema = net_schema schema_path in
  let obs = obs_setup ~node:name ~metrics_addr ~trace_out ~trace_logical ~sample in
  let journal =
    Option.map
      (fun dir ->
        try Journal.config ~snapshot_every dir
        with Invalid_argument msg -> or_die (Error msg))
      dir
  in
  let r =
    or_die
      (Relay.create ?journal ~heartbeat:(net_heartbeat hb_period hb_misses)
         ~max_queue ~metrics:obs.obs_metrics ?tracer:obs.obs_tracer
         ~start:false ~name ~up ~listen schema)
  in
  Printf.printf "relay %s: serving %s, upstream %s\n%!" name
    (Transport.addr_to_string listen)
    (Transport.addr_to_string up);
  Server.serve ~connections (Relay.server r);
  Printf.printf "relay %s: served %d connection(s), cursor %d\n" name
    connections
    (Server.cursor (Relay.server r));
  Relay.close r;
  obs.obs_finish ()

let run_connect addr_s schema_path name auto deadline hb_period hb_misses
    metrics_addr trace_out trace_logical sample =
  let module Client = Genas_ens.Broker_client in
  let module Transport = Genas_ens.Transport in
  let addr = or_die (Transport.addr_of_string addr_s) in
  let schema = net_schema schema_path in
  let obs = obs_setup ~node:name ~metrics_addr ~trace_out ~trace_logical ~sample in
  let reconnect =
    if auto then Some (Genas_ens.Supervise.retry_policy ~backoff_ns:5e7 ())
    else None
  in
  let c =
    or_die
      (Client.connect ~name ~deadline_s:deadline
         ~heartbeat:(net_heartbeat hb_period hb_misses) ?reconnect
         ~metrics:obs.obs_metrics ?tracer:obs.obs_tracer schema addr)
  in
  let deliver who n =
    Printf.printf "deliver %s <- %s\n%!" who
      (Lang.event_to_string schema n.Genas_ens.Notification.event)
  in
  let split_colon line =
    match String.index_opt line ':' with
    | None -> Error "expected 'WHO : BODY'"
    | Some i ->
      Ok
        ( String.trim (String.sub line 0 i),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
  in
  let run_line line =
    let word, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    in
    match word with
    | "sub" ->
      let* who, body = split_colon rest in
      let* tok = Client.subscribe c ~subscriber:who body (deliver who) in
      Printf.printf "sub %s token=%d forwarded=%d\n%!" who tok
        (List.length (Client.forwarded_tokens c));
      Ok ()
    | "pub" ->
      let* ev = Lang.parse_event schema rest in
      let* local = Client.publish c ev in
      Printf.printf "pub ok local=%d\n%!" local;
      Ok ()
    | "await" ->
      let n = try int_of_string rest with Failure _ -> 1 in
      Printf.printf "await applied=%d\n%!" (Client.await_deliveries c n);
      Ok ()
    | "replay" ->
      let* applied, complete = Client.replay c in
      Printf.printf "replay applied=%d complete=%b\n%!" applied complete;
      Ok ()
    | "status" ->
      (* Flushed per line: a scripted peer (cram, another process)
         paces itself on this output, so it cannot sit in the stdio
         buffer until exit. *)
      Printf.printf
        "status connected=%b applied=%d dropped=%d reconnects=%d \
         heartbeat_misses=%d outbox=%d\n%!"
        (Client.connected c) (Client.applied_total c)
        (Client.duplicates_dropped c) (Client.reconnects c)
        (Client.heartbeat_misses c) (Client.outbox_depth c);
      Ok ()
    | "quit" -> Ok ()
    | other -> Error (Printf.sprintf "unknown command %S" other)
  in
  let rec loop () =
    match In_channel.input_line stdin with
    | None -> ()
    | Some raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then loop ()
      else if line = "quit" then ()
      else begin
        (match run_line line with
        | Ok () -> ()
        | Error e -> Printf.printf "error: %s\n%!" e);
        loop ()
      end
  in
  loop ();
  Client.close c;
  Printf.printf "bye applied=%d dropped=%d\n" (Client.applied_total c)
    (Client.duplicates_dropped c);
  obs.obs_finish ()

let addr_arg =
  Arg.(required & opt (some string) None
       & info [ "addr" ] ~docv:"ADDR"
           ~doc:"Socket address: unix:PATH or tcp:HOST:PORT.")

let net_schema_arg =
  Arg.(value & opt (some string) None
       & info [ "schema" ] ~docv:"FILE"
           ~doc:"Schema file (default: the demo topic/severity schema).")

let dir_arg =
  Arg.(value & opt (some string) None
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Journal directory (enables durability and client \
                 catch-up replay).")

let snapshot_arg =
  Arg.(value & opt int 1000
       & info [ "snapshot-every" ] ~doc:"Journaled ops between snapshots.")

let connections_arg =
  Arg.(value & opt int 1
       & info [ "connections" ] ~docv:"N"
           ~doc:"Serve exactly N connections, then exit (0: forever).")

let node_name_arg default =
  Arg.(value & opt string default
       & info [ "name" ] ~docv:"NAME"
           ~doc:"Node name — the origin tag for cross-hop no-echo; must \
                 be unique within a mesh.")

let heartbeat_arg =
  Arg.(value & opt float 5.0
       & info [ "heartbeat" ] ~docv:"SECS"
           ~doc:"Liveness ping period in seconds (0 disables liveness).")

let misses_arg =
  Arg.(value & opt int 3
       & info [ "misses" ] ~docv:"N"
           ~doc:"Silent heartbeat periods before a peer is declared dead.")

let max_queue_arg =
  Arg.(value & opt int 1024
       & info [ "max-queue" ] ~docv:"N"
           ~doc:"Outbound frames queued per connection before a peer is \
                 dropped as a slow consumer (replay is its catch-up).")

let metrics_addr_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-addr" ] ~docv:"ADDR"
           ~doc:"Serve a metrics scrape endpoint on $(docv) (unix:PATH or \
                 tcp:HOST:PORT): /metrics is Prometheus text, \
                 /metrics.json a JSON snapshot, both carrying \
                 genas_build_info and genas_uptime_seconds.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Enable wire tracing and write this node's flight-recorder \
                 dump to $(docv) at exit; stitch the per-node dumps into \
                 one Chrome trace with 'genas trace-merge'.")

let trace_logical_arg =
  Arg.(value & flag
       & info [ "trace-logical" ]
           ~doc:"Time spans with a private logical clock (1µs per reading) \
                 instead of the host monotonic clock: identical runs dump \
                 byte-identical traces.")

let net_sample_arg =
  Arg.(value & opt float 1.0
       & info [ "sample" ] ~doc:"Trace sampling probability in [0,1].")

let serve_cmd =
  let aggregate_arg =
    Arg.(value & flag
         & info [ "aggregate" ]
             ~doc:"Aggregate subscriptions through the covering lattice \
                   (epoch swaps recompile off the publish path).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a broker over a Unix-domain or TCP socket speaking the \
             checksummed Codec wire protocol: remote subscribe/publish, \
             covering-aware delivery, heartbeat liveness, bounded \
             per-connection queues, and (with --dir) write-ahead \
             durability with since-cursor catch-up replay")
    Term.(const run_serve $ addr_arg $ net_schema_arg $ dir_arg
          $ snapshot_arg $ aggregate_arg $ connections_arg
          $ node_name_arg "server" $ heartbeat_arg $ misses_arg
          $ max_queue_arg $ metrics_addr_arg $ trace_out_arg
          $ trace_logical_arg $ net_sample_arg)

let relay_cmd =
  let up_arg =
    Arg.(required & opt (some string) None
         & info [ "up" ] ~docv:"ADDR"
             ~doc:"Upstream broker address: unix:PATH or tcp:HOST:PORT.")
  in
  Cmd.v
    (Cmd.info "relay"
       ~doc:"Run a relay node: serve downstream peers on --addr while \
             peering with an upstream broker at --up. Downstream \
             subscriptions mirror upstream (covering-minimized), \
             publishes forward with origin preserved, and the upstream \
             link self-heals by reconnect + replay")
    Term.(const run_relay $ addr_arg $ up_arg $ net_schema_arg $ dir_arg
          $ snapshot_arg $ connections_arg $ node_name_arg "relay"
          $ heartbeat_arg $ misses_arg $ max_queue_arg $ metrics_addr_arg
          $ trace_out_arg $ trace_logical_arg $ net_sample_arg)

let connect_cmd =
  let auto_arg =
    Arg.(value & flag
         & info [ "auto" ]
             ~doc:"Self-heal the link: automatic reconnect with capped \
                   exponential backoff, re-sent subscriptions, and \
                   journal catch-up replay.")
  in
  let deadline_arg =
    Arg.(value & opt float 30.0
         & info [ "deadline" ] ~docv:"SECS"
             ~doc:"Request deadline: a handshake or acknowledged request \
                   blocked longer fails with a timeout.")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Connect a scripted client to a served broker; stdin drives \
             it: 'sub WHO : BODY', 'pub attr = v, ...', 'await N', \
             'replay', 'status', 'quit'")
    Term.(const run_connect $ addr_arg $ net_schema_arg
          $ node_name_arg "client" $ auto_arg $ deadline_arg
          $ heartbeat_arg $ misses_arg $ metrics_addr_arg $ trace_out_arg
          $ trace_logical_arg $ net_sample_arg)

let trace_merge_cmd =
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"DUMP")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:"Stitch per-node flight-recorder dumps (--trace-out files) into \
             one Chrome trace-event JSON document: one pid per node, \
             per-node clock normalization, and net.ctx flow arrows linking \
             each hop's spans to the publish that caused them")
    Term.(const run_trace_merge $ files_arg $ out_arg)

let status_cmd =
  let deadline_arg =
    Arg.(value & opt float 30.0
         & info [ "deadline" ] ~docv:"SECS"
             ~doc:"Status request deadline.")
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Ask a served broker (or relay) for mesh introspection: one \
             Status_req fans out across the relay chain and the aggregated \
             table lists every hop's node name, role, journal cursor, \
             connection count, uptime, and per-peer link state")
    Term.(const run_status $ addr_arg $ net_schema_arg $ deadline_arg)

let http_get_cmd =
  let path_arg =
    Arg.(value & opt string "/metrics"
         & info [ "path" ] ~docv:"PATH" ~doc:"Request path.")
  in
  Cmd.v
    (Cmd.info "http-get"
       ~doc:"Curl-free HTTP/1.0 GET against a --metrics-addr scrape \
             endpoint: prints the status code, then the body (used by the \
             cram suite)")
    Term.(const run_http_get $ addr_arg $ path_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "genas" ~version:"1.0.0"
             ~doc:"Distribution-based event filtering (GENAS)")
          [ match_cmd; plan_cmd; simulate_cmd; dists_cmd; figures_cmd;
            bench_cmd; metrics_cmd; faults_cmd; journal_cmd; recover_cmd;
            trace_cmd; trace_merge_cmd; jsoncheck_cmd; repl_cmd; serve_cmd;
            relay_cmd; connect_cmd; status_cmd; http_get_cmd ]))
