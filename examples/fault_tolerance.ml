(* Fault-tolerant delivery — supervised handlers, retry with seeded
   backoff, a per-subscriber circuit breaker, and a bounded dead-letter
   queue, exercised under a deterministic fault-injection plan.

   A flaky dashboard raises on most deliveries; a lossy link drops and
   duplicates events. The broker network keeps every healthy subscriber
   served, retries the flaky one with exponential backoff, trips its
   circuit once it is clearly down, and parks the terminally failed
   notifications in the dead-letter queue for inspection. Because the
   fault plan and the jitter stream both derive from one seed, rerunning
   this program replays the exact same story.

   Run with: dune exec examples/fault_tolerance.exe *)

module Prng = Genas_prng.Prng
module Value = Genas_model.Value
module Domain = Genas_model.Domain
module Schema = Genas_model.Schema
module Event = Genas_model.Event
module Lang = Genas_profile.Lang
module Router = Genas_ens.Router
module Fault = Genas_ens.Fault
module Supervise = Genas_ens.Supervise
module Deadletter = Genas_ens.Deadletter

let () =
  let schema =
    Schema.create_exn
      [
        ("sensor", Domain.enum [ "door"; "hvac"; "power" ]);
        ("level", Domain.int_range ~lo:0 ~hi:100);
      ]
  in
  let seed = 2026 in
  let faults =
    Fault.plan ~seed
      {
        Fault.none with
        Fault.handler_failure = [ ("dashboard", 0.7) ];
        link_drop = 0.05;
        link_duplicate = 0.03;
        link_delay = 0.05;
        broker_pause = 0.02;
      }
  in
  let retry =
    Supervise.retry_policy ~max_attempts:3 ~backoff_ns:500_000.0
      ~jitter_seed:seed ~trip_after:3 ~cooldown:6 ()
  in
  let net = Router.line schema ~nodes:3 ~retry ~faults ~deadletter_capacity:64 in
  let received = Hashtbl.create 16 in
  let on_notify n =
    let key = n.Genas_ens.Notification.subscriber in
    Hashtbl.replace received key
      (1 + Option.value ~default:0 (Hashtbl.find_opt received key))
  in
  let subscribe at who src =
    match Lang.parse_profile ~name:who schema src with
    | Error e -> failwith e
    | Ok profile ->
      ignore (Router.subscribe net ~at ~subscriber:who ~profile on_notify)
  in
  subscribe 2 "dashboard" "level >= 50";
  subscribe 2 "logger" "level >= 50";
  subscribe 0 "security" "sensor = door";

  let rng = Prng.create ~seed in
  let sensors = [| "door"; "hvac"; "power" |] in
  for i = 0 to 499 do
    let event =
      Event.create_exn ~time:(float_of_int i) schema
        [
          ("sensor", Value.Str (Prng.choice rng sensors));
          ("level", Value.Int (Prng.int rng ~bound:101));
        ]
    in
    ignore (Router.publish net ~at:(Prng.int rng ~bound:3) event)
  done;

  Format.printf "After 500 published events (seed %d):@." seed;
  Hashtbl.iter
    (fun who n -> Format.printf "  %-10s %4d accepted deliveries@." who n)
    received;
  let s = Router.supervisor net in
  Format.printf "@.Supervision:@.";
  Format.printf "  failed attempts   %4d@." (Supervise.failures s);
  Format.printf "  retries           %4d@." (Supervise.retries s);
  Format.printf "  short-circuited   %4d@." (Supervise.short_circuited s);
  Format.printf "  circuit trips     %4d@." (Supervise.trips s);
  Format.printf "  circuit(dashboard) = %s@."
    (match Supervise.circuit s "dashboard" with
    | Supervise.Closed -> "closed"
    | Supervise.Open -> "open"
    | Supervise.Half_open -> "half-open");
  Format.printf "@.Link faults: %d dropped, %d duplicated, %d delayed, %d pauses@."
    (Router.link_drops net) (Router.link_duplicates net)
    (Router.link_delays net) (Router.broker_pauses net);
  let dlq = Router.deadletter net in
  Format.printf "@.Dead-letter queue (%d held, %d evicted):@."
    (Deadletter.length dlq) (Deadletter.dropped dlq);
  List.iteri
    (fun i e ->
      if i < 3 then
        Format.printf "  #%d %s after %d attempt(s): %s@." e.Deadletter.seq
          e.Deadletter.notification.Genas_ens.Notification.subscriber
          e.Deadletter.attempts e.Deadletter.error)
    (Deadletter.entries dlq);
  Format.printf "@.The first eventful deliveries, as the supervisor saw them:@.";
  List.iteri
    (fun i r -> if i < 5 then Format.printf "  %a@." Supervise.pp_record r)
    (Supervise.trace s)
